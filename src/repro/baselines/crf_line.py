"""CRF-L — the conditional random field line classifier baseline.

Re-implementation of the approach of Adelfio & Samet ("Schema
extraction for tabular data on the web", PVLDB 2013) in the
configuration the paper evaluates: content and contextual features
only (no stylistic or spreadsheet-formula features, which verbose CSV
files lack) with *logarithmic binning*, feeding a linear-chain CRF
that labels each file's line sequence jointly.

Feature construction follows the published recipe: per-line counts
(cells, words, characters, numeric cells) are discretized into
logarithmically growing buckets and one-hot encoded; ratio-valued
features are kept continuous; boundary indicator features mark the
first/last lines of the file.
"""

from __future__ import annotations

import numpy as np

from repro.core.datatypes import infer_data_type, is_numeric_type
from repro.errors import NotFittedError
from repro.ml.crf import LinearChainCRF
from repro.ml.preprocessing import LogarithmicBinner
from repro.types import (
    CLASS_TO_INDEX,
    INDEX_TO_CLASS,
    AnnotatedFile,
    CellClass,
    DataType,
    Table,
)
from repro.util.text import count_words

#: Count-valued features that get logarithmic binning.
_BINNED_FEATURES = ("cell_count", "word_count", "char_count", "numeric_count")


class CRFLineClassifier:
    """CRF-based line classification with logarithmically binned features.

    Parameters
    ----------
    n_bins:
        Buckets for the logarithmic binning of count features.
    l2, max_iter:
        CRF training configuration.
    """

    def __init__(self, n_bins: int = 8, l2: float = 1e-2,
                 max_iter: int = 80):
        self.n_bins = n_bins
        self.binner = LogarithmicBinner(n_bins=n_bins)
        self.l2 = l2
        self.max_iter = max_iter
        self._crf: LinearChainCRF | None = None

    # ------------------------------------------------------------------
    # Feature construction
    # ------------------------------------------------------------------
    def _raw_counts(self, rows: list[list[str]]) -> np.ndarray:
        """Count features per line: cells, words, characters, numerics."""
        counts = np.zeros((len(rows), len(_BINNED_FEATURES)))
        for i, row in enumerate(rows):
            non_empty = [v for v in row if v.strip()]
            counts[i, 0] = len(non_empty)
            counts[i, 1] = sum(count_words(v) for v in non_empty)
            counts[i, 2] = sum(len(v.strip()) for v in non_empty)
            counts[i, 3] = sum(
                1
                for v in non_empty
                if is_numeric_type(infer_data_type(v))
            )
        return counts

    def _continuous(self, rows: list[list[str]]) -> np.ndarray:
        """Type-composition ratios and position indicators.

        Mirrors Adelfio & Samet's per-line content features: the
        fraction of cells per data type plus the line's position.  The
        paper's novel features (aggregation keywords, DCG, Bhattacharyya
        length difference, derived coverage) are deliberately absent —
        they are Strudel's contribution, not the baseline's.
        """
        n = len(rows)
        out = np.zeros((n, 7))
        types = [[infer_data_type(v) for v in row] for row in rows]
        for i, row in enumerate(rows):
            row_types = types[i]
            width = len(row)
            non_empty = [t for t in row_types if t is not DataType.EMPTY]
            out[i, 0] = 1.0 - len(non_empty) / width if width else 1.0
            if non_empty:
                out[i, 1] = sum(
                    1 for t in non_empty if is_numeric_type(t)
                ) / len(non_empty)
                out[i, 2] = sum(
                    1 for t in non_empty if t is DataType.STRING
                ) / len(non_empty)
                out[i, 3] = sum(
                    1 for t in non_empty if t is DataType.DATE
                ) / len(non_empty)
            out[i, 4] = i / (n - 1) if n > 1 else 0.0
            out[i, 5] = 1.0 if i == 0 else 0.0
            out[i, 6] = 1.0 if i == n - 1 else 0.0
        return out

    def _features(self, table: Table) -> np.ndarray:
        """Per-line features plus shifted copies of the adjacent lines.

        Adelfio & Samet's contextual features are the same content
        features computed on the neighbouring lines, which a shift
        reproduces exactly (boundary lines see zeros).
        """
        rows = list(table.rows())
        binned = self.binner.one_hot(self._raw_counts(rows))
        continuous = self._continuous(rows)
        own = np.hstack([binned, continuous])
        above = np.zeros_like(continuous)
        below = np.zeros_like(continuous)
        if len(rows) > 1:
            above[1:] = continuous[:-1]
            below[:-1] = continuous[1:]
        return np.hstack([own, above, below])

    # ------------------------------------------------------------------
    # Estimator API (mirrors StrudelLineClassifier)
    # ------------------------------------------------------------------
    def fit(self, files: list[AnnotatedFile]) -> "CRFLineClassifier":
        """Train the CRF on the non-empty line sequences of ``files``."""
        sequences: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for annotated in files:
            indices = annotated.non_empty_line_indices()
            if not indices:
                continue
            features = self._features(annotated.table)
            sequences.append(features[indices])
            labels.append(
                np.array(
                    [
                        CLASS_TO_INDEX[annotated.line_labels[i]]
                        for i in indices
                    ]
                )
            )
        self._crf = LinearChainCRF(l2=self.l2, max_iter=self.max_iter)
        self._crf.fit(sequences, labels)
        return self

    def predict(self, table: Table) -> list[CellClass]:
        """Predicted class per line; empty lines get ``CellClass.EMPTY``."""
        if self._crf is None:
            raise NotFittedError("CRFLineClassifier must be fitted first")
        indices = [
            i for i in range(table.n_rows) if not table.is_empty_row(i)
        ]
        labels = [CellClass.EMPTY] * table.n_rows
        if not indices:
            return labels
        features = self._features(table)
        path = self._crf.predict([features[indices]])[0]
        for position, klass in zip(indices, path):
            labels[position] = INDEX_TO_CLASS[int(klass)]
        return labels
