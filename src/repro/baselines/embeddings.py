"""Content-only cell embeddings for the RNN-C baseline.

Ghasemi-Gol et al. feed their recurrent classifier pre-trained cell
embeddings that capture contextual and stylistic semantics; the paper
compares against the *style-less* variant.  This module provides the
equivalent content embedding: a fixed-length dense vector summarizing
a cell's text shape (character-class profile, length, word count),
inferred data type, keyword signals and position.  The vectors are
deterministic, so "pre-training" reduces to feature computation —
appropriate for an offline reproduction and sufficient to exercise
the recurrent architecture the baseline is really about.
"""

from __future__ import annotations

import numpy as np

from repro.core.datatypes import infer_data_type
from repro.core.keywords import contains_aggregation_keyword
from repro.types import Table
from repro.util.text import count_words

#: Dimensionality of one cell embedding.
EMBEDDING_SIZE = 18


def embed_cell(
    value: str, row: int, col: int, n_rows: int, n_cols: int
) -> np.ndarray:
    """Dense content embedding of a single cell."""
    stripped = value.strip()
    length = len(stripped)
    letters = sum(1 for ch in stripped if ch.isalpha())
    digits = sum(1 for ch in stripped if ch.isdigit())
    uppercase = sum(1 for ch in stripped if ch.isupper())
    punctuation = sum(
        1 for ch in stripped if not ch.isalnum() and not ch.isspace()
    )
    spaces = stripped.count(" ")
    denominator = max(length, 1)

    dtype = infer_data_type(value)
    type_one_hot = np.zeros(5)
    type_one_hot[int(dtype)] = 1.0

    return np.array(
        [
            min(length / 30.0, 1.0),
            letters / denominator,
            digits / denominator,
            uppercase / denominator,
            punctuation / denominator,
            spaces / denominator,
            min(count_words(value) / 8.0, 1.0),
            1.0 if contains_aggregation_keyword(value) else 0.0,
            1.0 if stripped.endswith(":") else 0.0,
            1.0 if not stripped else 0.0,
            row / (n_rows - 1) if n_rows > 1 else 0.0,
            col / (n_cols - 1) if n_cols > 1 else 0.0,
            1.0 if col == 0 else 0.0,
            *type_one_hot,
        ]
    )


def embed_rows(table: Table) -> tuple[list[list[tuple[int, int]]], list[np.ndarray]]:
    """One embedding sequence per line with at least one non-empty cell.

    Each sequence covers the *non-empty* cells of its line, left to
    right (the recurrence propagates context across the line, as in
    the original architecture).  Returns the cell positions backing
    each sequence plus the ``(length, EMBEDDING_SIZE)`` arrays.
    """
    n_rows, n_cols = table.shape
    positions: list[list[tuple[int, int]]] = []
    sequences: list[np.ndarray] = []
    for i in range(n_rows):
        row = table.row(i)
        cols = [j for j, v in enumerate(row) if v.strip()]
        if not cols:
            continue
        positions.append([(i, j) for j in cols])
        sequences.append(
            np.vstack(
                [embed_cell(row[j], i, j, n_rows, n_cols) for j in cols]
            )
        )
    return positions, sequences
