"""Baseline and state-of-the-art comparison approaches.

* :class:`~repro.baselines.crf_line.CRFLineClassifier` — CRF-L, the
  conditional-random-field line classifier of Adelfio & Samet with
  logarithmic feature binning (stylistic features removed, as in the
  paper's fair-comparison setup).
* :class:`~repro.baselines.pytheas.PytheasLineClassifier` — Pytheas-L,
  the fuzzy-rule table-discovery approach of Christodoulakis et al.;
  classifies lines into five classes (no ``derived``).
* :class:`~repro.baselines.rnn_cells.RNNCellClassifier` — RNN-C, the
  recurrent cell classifier of Ghasemi-Gol et al. over content-only
  cell embeddings.
"""

from repro.baselines.crf_line import CRFLineClassifier
from repro.baselines.pytheas import PytheasLineClassifier
from repro.baselines.rnn_cells import RNNCellClassifier

__all__ = [
    "CRFLineClassifier",
    "PytheasLineClassifier",
    "RNNCellClassifier",
]
