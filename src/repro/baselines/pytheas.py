"""Pytheas-L — fuzzy-rule table discovery and line classification.

Re-implementation of the pipeline of Christodoulakis et al. ("Pytheas:
Pattern-based Table Discovery in CSV Files", PVLDB 2020) at the level
of detail the paper evaluates:

1. a set of fuzzy *data* / *not-data* rules fires on every line; rule
   weights are learned from training data (each rule's empirical
   precision);
2. the weighted votes are fused into a per-line data confidence, and a
   threshold yields a binary data/non-data labelling;
3. maximal runs of data lines become *table bodies*, whose top/bottom
   borders drive the remaining classification;
4. class-specific rules label the non-data lines relative to the
   discovered tables: a line directly above a body is a header
   candidate, lines above the first header are metadata, single-cell
   lines between data runs are group headers, lines after the last
   table are notes.

Like the original, the approach knows *five* classes — it has no
``derived`` concept — so evaluations exclude derived lines for it,
exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.datatypes import infer_data_type, is_numeric_type
from repro.core.keywords import line_contains_aggregation_keyword
from repro.types import AnnotatedFile, CellClass, DataType, Table
from repro.util.text import count_words


@dataclass(frozen=True)
class FuzzyRule:
    """One fuzzy rule: a predicate over a line plus the class it votes."""

    name: str
    votes_data: bool
    fires: Callable[["_LineView"], bool]


@dataclass
class _LineView:
    """Precomputed per-line facts shared by all rules."""

    index: int
    n_lines: int
    cells: list[str]
    types: list[DataType]

    @property
    def non_empty(self) -> list[int]:
        return [
            j for j, t in enumerate(self.types) if t is not DataType.EMPTY
        ]

    @property
    def numeric_ratio(self) -> float:
        non_empty = self.non_empty
        if not non_empty:
            return 0.0
        numeric = sum(1 for j in non_empty if is_numeric_type(self.types[j]))
        return numeric / len(non_empty)


def _default_rules() -> list[FuzzyRule]:
    return [
        FuzzyRule(
            "numeric_majority", True,
            lambda v: v.numeric_ratio >= 0.5 and len(v.non_empty) >= 2,
        ),
        FuzzyRule(
            "many_cells", True,
            lambda v: len(v.non_empty) >= 3,
        ),
        FuzzyRule(
            "leading_key_value_shape", True,
            lambda v: (
                len(v.non_empty) >= 2
                and v.types[v.non_empty[0]] is DataType.STRING
                and all(
                    is_numeric_type(v.types[j]) for j in v.non_empty[1:]
                )
            ),
        ),
        FuzzyRule(
            "single_leading_cell", False,
            lambda v: len(v.non_empty) == 1 and v.non_empty[0] == 0,
        ),
        FuzzyRule(
            "long_natural_text", False,
            lambda v: any(
                len(v.cells[j].strip()) > 40 or count_words(v.cells[j]) > 6
                for j in v.non_empty
            ),
        ),
        FuzzyRule(
            "mostly_empty", False,
            lambda v: (
                len(v.types) > 0
                and len(v.non_empty) / len(v.types) < 0.3
            ),
        ),
        FuzzyRule(
            "aggregation_keyword", False,
            lambda v: line_contains_aggregation_keyword(v.cells),
        ),
        FuzzyRule(
            "all_string_cells", False,
            lambda v: (
                len(v.non_empty) >= 2
                and all(
                    v.types[j] is DataType.STRING for j in v.non_empty
                )
            ),
        ),
    ]


class PytheasLineClassifier:
    """Fuzzy-rule line classification with learned rule weights.

    Parameters
    ----------
    confidence_threshold:
        Weighted-vote margin above which a line counts as data.
    """

    def __init__(self, confidence_threshold: float = 0.0):
        self.confidence_threshold = confidence_threshold
        self.rules = _default_rules()
        self._weights: dict[str, float] | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _views(table: Table) -> list[_LineView]:
        rows = list(table.rows())
        return [
            _LineView(
                index=i,
                n_lines=len(rows),
                cells=row,
                types=[infer_data_type(v) for v in row],
            )
            for i, row in enumerate(rows)
        ]

    # ------------------------------------------------------------------
    def fit(self, files: list[AnnotatedFile]) -> "PytheasLineClassifier":
        """Learn each rule's weight as its empirical precision.

        A data-voting rule's weight is the fraction of its firings on
        lines whose ground truth belongs to the table body (``data`` or
        ``derived``); a non-data rule symmetrically.  Rules that never
        fire get weight 0.
        """
        fired: dict[str, int] = {r.name: 0 for r in self.rules}
        correct: dict[str, int] = {r.name: 0 for r in self.rules}
        body = {CellClass.DATA, CellClass.DERIVED}
        for annotated in files:
            views = self._views(annotated.table)
            for i in annotated.non_empty_line_indices():
                is_body = annotated.line_labels[i] in body
                for rule in self.rules:
                    if rule.fires(views[i]):
                        fired[rule.name] += 1
                        if rule.votes_data == is_body:
                            correct[rule.name] += 1
        self._weights = {
            name: (correct[name] / fired[name] if fired[name] else 0.0)
            for name in fired
        }
        return self

    # ------------------------------------------------------------------
    def data_confidence(self, view: _LineView) -> float:
        """Weighted data-vs-non-data vote margin in [-1, 1]."""
        weights = self._weights or {
            r.name: 1.0 for r in self.rules
        }
        score = 0.0
        total = 0.0
        for rule in self.rules:
            if rule.fires(view):
                weight = weights[rule.name]
                score += weight if rule.votes_data else -weight
                total += weight
        return score / total if total > 0 else 0.0

    # ------------------------------------------------------------------
    def predict(self, table: Table) -> list[CellClass]:
        """Per-line classes; empty lines get ``CellClass.EMPTY``."""
        views = self._views(table)
        labels: list[CellClass] = [CellClass.EMPTY] * table.n_rows
        non_empty = [
            i for i in range(table.n_rows) if not table.is_empty_row(i)
        ]
        if not non_empty:
            return labels

        is_data = {
            i: self.data_confidence(views[i]) > self.confidence_threshold
            for i in non_empty
        }
        bodies = self._table_bodies([i for i in non_empty if is_data[i]])
        if not bodies:
            # No table discovered: everything readable is metadata,
            # mirroring Pytheas's behaviour on files without tables.
            for i in non_empty:
                labels[i] = CellClass.METADATA
            return labels

        bodies = [
            self._shrink_header_from_body(views, start, stop)
            for start, stop in bodies
        ]
        bodies = self._demote_header_stubs(bodies)
        for start, stop in bodies:
            for i in range(start, stop + 1):
                if table.is_empty_row(i):
                    continue
                # Lines inside a discovered table that individually
                # scored non-data and have a single leading cell are
                # in-table group headers (Pytheas's sub-header rule).
                if (
                    not is_data.get(i, False)
                    and len(views[i].non_empty) == 1
                    and views[i].non_empty[0] == 0
                ):
                    labels[i] = CellClass.GROUP
                else:
                    labels[i] = CellClass.DATA

        first_start = bodies[0][0]
        last_stop = bodies[-1][1]
        self._label_headers(table, views, labels, bodies, non_empty)
        for i in non_empty:
            if labels[i] is not CellClass.EMPTY:
                continue
            if i < first_start:
                labels[i] = CellClass.METADATA
            elif i > last_stop:
                labels[i] = CellClass.NOTES
            else:
                # Between bodies: single leading cell lines are group
                # headers; anything else is metadata of the next table.
                view = views[i]
                if len(view.non_empty) == 1:
                    labels[i] = CellClass.GROUP
                else:
                    labels[i] = CellClass.METADATA
        return labels

    # ------------------------------------------------------------------
    @staticmethod
    def _table_bodies(data_lines: list[int]) -> list[tuple[int, int]]:
        """Merge data lines into maximal bodies, bridging 1-line gaps."""
        if not data_lines:
            return []
        bodies: list[tuple[int, int]] = []
        start = previous = data_lines[0]
        for i in data_lines[1:]:
            if i - previous <= 2:
                previous = i
                continue
            bodies.append((start, previous))
            start = previous = i
        bodies.append((start, previous))
        return bodies

    @staticmethod
    def _demote_header_stubs(
        bodies: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        """Drop tiny bodies that sit directly above a larger one.

        A one- or two-line "table" a couple of lines above a real body
        is almost always that body's header block misjudged as data;
        demoting it lets the header rules reconsider those lines.
        """
        kept: list[tuple[int, int]] = []
        for index, (start, stop) in enumerate(bodies):
            is_stub = (stop - start + 1) <= 2
            followed_closely = (
                index + 1 < len(bodies)
                and bodies[index + 1][0] - stop <= 4
                and (bodies[index + 1][1] - bodies[index + 1][0]) > 2
            )
            if is_stub and followed_closely:
                continue
            kept.append((start, stop))
        return kept or bodies

    @staticmethod
    def _shrink_header_from_body(
        views: list[_LineView], start: int, stop: int
    ) -> tuple[int, int]:
        """Pop misjudged header lines off the top of a body.

        The original Pytheas re-examines discovered table tops: a first
        line whose cell types diverge from the rest of the body (e.g.
        a row of year numbers over float data, or strings over
        numbers) is a header, not data.  We compare the type profile
        of up to two leading lines against the body majority.
        """
        if stop - start < 2:
            return start, stop
        def profile(view: _LineView) -> tuple[float, int]:
            return view.numeric_ratio, len(view.non_empty)

        body_ratios = [
            views[i].numeric_ratio for i in range(start + 2, stop + 1)
            if views[i].non_empty
        ]
        if not body_ratios:
            return start, stop
        typical = float(np.median(body_ratios))
        new_start = start
        for i in (start, start + 1):
            if i >= stop:
                break
            view = views[i]
            if not view.non_empty:
                break
            ratio = view.numeric_ratio
            looks_like_header = (
                abs(ratio - typical) > 0.4
                or all(
                    view.types[j] in (DataType.STRING, DataType.DATE)
                    for j in view.non_empty
                )
            )
            if looks_like_header and new_start == i:
                new_start = i + 1
            else:
                break
        if new_start > stop - 1:
            return start, stop
        return new_start, stop

    def _label_headers(
        self,
        table: Table,
        views: list[_LineView],
        labels: list[CellClass],
        bodies: list[tuple[int, int]],
        non_empty: list[int],
    ) -> None:
        """Mark up to two header lines directly above each body."""
        non_empty_set = set(non_empty)
        for start, _ in bodies:
            remaining = 2
            i = start - 1
            while i >= 0 and remaining > 0:
                if table.is_empty_row(i):
                    i -= 1
                    continue
                if i not in non_empty_set or labels[i] is not CellClass.EMPTY:
                    break
                view = views[i]
                # Group headers may sit between the header block and
                # the data (the paper allows group above and below
                # headers): label them and keep scanning upward.
                if len(view.non_empty) == 1 and view.non_empty[0] == 0:
                    labels[i] = CellClass.GROUP
                    i -= 1
                    continue
                # A header candidate has several cells and is not one
                # long natural-language sentence.
                wide = len(view.non_empty) >= 2
                wordy = any(
                    count_words(view.cells[j]) > 6 for j in view.non_empty
                )
                if wide and not wordy:
                    labels[i] = CellClass.HEADER
                    remaining -= 1
                    i -= 1
                else:
                    break
