"""Type score for the data-consistency dialect measure.

Following van den Burg et al., the *type score* of a parse is the
fraction of cells whose value matches one of a fixed set of known data
types.  A correct dialect splits a file into semantically coherent
cells (numbers, dates, short words), while a wrong one produces merged
fragments that match nothing.
"""

from __future__ import annotations

import re

# Ordered list of (name, pattern) pairs; a cell is "known" if any matches.
_KNOWN_TYPE_PATTERNS: list[tuple[str, re.Pattern[str]]] = [
    ("empty", re.compile(r"^\s*$")),
    ("integer", re.compile(r"^[+-]?\d{1,3}(,\d{3})*$|^[+-]?\d+$")),
    (
        "float",
        re.compile(
            r"^[+-]?(\d{1,3}(,\d{3})*|\d+)?\.\d+([eE][+-]?\d+)?$"
            r"|^[+-]?\d+[eE][+-]?\d+$"
        ),
    ),
    ("percentage", re.compile(r"^[+-]?\d+(\.\d+)?\s?%$")),
    ("currency", re.compile(r"^[$€£]\s?-?\d{1,3}(,\d{3})*(\.\d+)?$")),
    (
        "date",
        re.compile(
            r"^\d{4}[-/.]\d{1,2}[-/.]\d{1,2}$"
            r"|^\d{1,2}[-/.]\d{1,2}[-/.]\d{2,4}$"
            r"|^\d{4}$"
        ),
    ),
    ("time", re.compile(r"^\d{1,2}:\d{2}(:\d{2})?$")),
    ("word", re.compile(r"^[A-Za-z][A-Za-z0-9_' .\-]{0,30}$")),
    ("email", re.compile(r"^[\w.+-]+@[\w-]+\.[\w.]+$")),
    ("url", re.compile(r"^https?://\S+$")),
    ("missing", re.compile(r"^(n/?a|nan|null|none|-+|\?)$", re.IGNORECASE)),
]


def cell_type_name(value: str) -> str | None:
    """Name of the first known type matching ``value``, or ``None``."""
    stripped = value.strip()
    for name, pattern in _KNOWN_TYPE_PATTERNS:
        if pattern.match(stripped):
            return name
    return None


def is_known_type(value: str) -> bool:
    """Whether ``value`` matches any known data type."""
    return cell_type_name(value) is not None


def type_score(rows: list[list[str]], eps: float = 1e-10) -> float:
    """Fraction of cells with a recognizable type, floored at ``eps``.

    The floor keeps the overall consistency measure (a product) from
    collapsing to zero for dialects that still produce a highly regular
    pattern, mirroring the published formulation.
    """
    total = sum(len(r) for r in rows)
    if total == 0:
        return eps
    known = sum(1 for row in rows for value in row if is_known_type(value))
    return max(known / total, eps)
