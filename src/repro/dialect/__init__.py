"""Dialect detection for messy CSV files.

Implements the data-consistency approach of van den Burg et al.
("Wrangling messy CSV files by detecting row and type patterns", DMKD
2019), which the paper uses as its preprocessing step: every candidate
dialect is scored by the product of a *pattern score* (how regular are
the row abstractions the dialect induces) and a *type score* (how many
resulting cells have a recognizable data type); the best-scoring
dialect wins.
"""

from repro.dialect.detector import DialectDetector, detect_dialect
from repro.dialect.dialect import Dialect

__all__ = ["Dialect", "DialectDetector", "detect_dialect"]
