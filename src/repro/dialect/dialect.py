"""The :class:`Dialect` value object."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DialectError


@dataclass(frozen=True)
class Dialect:
    """A CSV dialect: delimiter, quote character, escape character.

    ``delimiter`` must be a single character.  ``quotechar`` and
    ``escapechar`` may be empty strings, meaning "no quoting" /
    "no escaping" respectively.
    """

    delimiter: str
    quotechar: str = '"'
    escapechar: str = ""

    def __post_init__(self) -> None:
        if len(self.delimiter) != 1:
            raise DialectError(
                f"delimiter must be a single character, got {self.delimiter!r}"
            )
        if len(self.quotechar) > 1:
            raise DialectError(
                f"quotechar must be empty or one character, got {self.quotechar!r}"
            )
        if len(self.escapechar) > 1:
            raise DialectError(
                f"escapechar must be empty or one character, got {self.escapechar!r}"
            )
        if self.quotechar and self.quotechar == self.delimiter:
            raise DialectError("quotechar must differ from delimiter")
        if self.escapechar and self.escapechar in (self.delimiter, self.quotechar):
            raise DialectError("escapechar must differ from delimiter and quotechar")

    @classmethod
    def standard(cls) -> "Dialect":
        """The RFC-4180 dialect: comma delimiter, double-quote quoting."""
        return cls(delimiter=",", quotechar='"', escapechar="")

    def describe(self) -> str:
        """Human-readable one-line description."""
        quote = self.quotechar or "none"
        escape = self.escapechar or "none"
        return f"delimiter={self.delimiter!r} quote={quote!r} escape={escape!r}"
