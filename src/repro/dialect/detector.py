"""Data-consistency dialect detection.

The detector enumerates candidate dialects (delimiters actually present
in the text crossed with quote and escape options), parses the text
under each, and scores every parse with

    Q(dialect) = pattern_score * type_score

as in van den Burg et al.  The highest-scoring dialect is returned;
ties break deterministically in favour of more conventional dialects
(comma before semicolon before tab, quoting before no quoting) so that
detection is stable across runs.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dialect.dialect import Dialect
from repro.dialect.patterns import pattern_score
from repro.dialect.type_score import type_score
from repro.errors import DialectError
from repro.parsing import parse_csv_text

#: Delimiters considered, in tie-break preference order.
CANDIDATE_DELIMITERS: tuple[str, ...] = (",", ";", "\t", "|", ":", " ", "^", "~")

#: Quote characters considered, in tie-break preference order.
CANDIDATE_QUOTES: tuple[str, ...] = ('"', "'", "")

#: Escape characters considered.
CANDIDATE_ESCAPES: tuple[str, ...] = ("", "\\")

#: Bound on the whole-sample detection memo below — generous for a
#: corpus sweep (one entry per distinct file prefix) yet small enough
#: that the memo never holds more than a few hundred kilobytes.
_MEMO_MAX_ENTRIES = 1024

# Detection is a pure function of the scored sample, so the winning
# dialect is memoized on a content hash of that sample (the bounded
# LRU mirrors ``infer_data_type``'s): a sweep that misses the feature
# or sweep caches still skips the candidate-enumeration cascade when
# it has seen identical leading bytes before.  Only the hash and the
# tiny frozen ``Dialect`` are retained, never the text.  This layer
# stays below ``obs``, so the memo keeps plain counters instead of
# metrics; callers that want them can surface ``dialect_memo_stats``.
_MEMO_LOCK = threading.Lock()
_MEMO: OrderedDict[str, Dialect] = OrderedDict()
_MEMO_HITS = 0
_MEMO_MISSES = 0


def _sample_key(sample: str) -> str:
    """Content hash of a detection sample."""
    data = sample.encode("utf-8", "backslashreplace")
    return hashlib.sha256(data).hexdigest()


def _memo_get(key: str) -> Dialect | None:
    global _MEMO_HITS, _MEMO_MISSES
    with _MEMO_LOCK:
        dialect = _MEMO.get(key)
        if dialect is None:
            _MEMO_MISSES += 1
            return None
        _MEMO.move_to_end(key)
        _MEMO_HITS += 1
        return dialect


def _memo_put(key: str, dialect: Dialect) -> None:
    with _MEMO_LOCK:
        _MEMO[key] = dialect
        _MEMO.move_to_end(key)
        while len(_MEMO) > _MEMO_MAX_ENTRIES:
            _MEMO.popitem(last=False)


def dialect_memo_stats() -> dict[str, int]:
    """Hit/miss/size counters of the detection memo (for tests and
    observability shims above this layer)."""
    with _MEMO_LOCK:
        return {
            "hits": _MEMO_HITS,
            "misses": _MEMO_MISSES,
            "entries": len(_MEMO),
        }


def clear_dialect_memo() -> None:
    """Drop all memoized detections and reset the counters."""
    global _MEMO_HITS, _MEMO_MISSES
    with _MEMO_LOCK:
        _MEMO.clear()
        _MEMO_HITS = 0
        _MEMO_MISSES = 0


@dataclass(frozen=True)
class ScoredDialect:
    """A candidate dialect together with its consistency score."""

    dialect: Dialect
    score: float
    pattern: float
    type: float


class DialectDetector:
    """Detects the dialect of a messy CSV text.

    Parameters
    ----------
    max_lines:
        Number of leading lines used for scoring.  Dialect signal
        saturates quickly, so bounding the sample keeps detection fast
        on large files.
    """

    def __init__(self, max_lines: int = 100):
        if max_lines <= 0:
            raise DialectError("max_lines must be positive")
        self.max_lines = max_lines

    # ------------------------------------------------------------------
    def detect(self, text: str) -> Dialect:
        """The best-scoring dialect for ``text``.

        Memoized on a content hash of the scored sample — two texts
        with identical leading lines share one detection.  Raises
        :class:`DialectError` on empty input.
        """
        sample = self._sample(text)
        if not sample.strip():
            raise DialectError("cannot detect the dialect of empty text")
        key = _sample_key(sample)
        cached = _memo_get(key)
        if cached is not None:
            return cached
        dialect = self._rank_sample(sample)[0].dialect
        _memo_put(key, dialect)
        return dialect

    def rank(self, text: str) -> list[ScoredDialect]:
        """All candidate dialects scored and sorted best-first."""
        sample = self._sample(text)
        if not sample.strip():
            return []
        return self._rank_sample(sample)

    def _rank_sample(self, sample: str) -> list[ScoredDialect]:
        scored: list[ScoredDialect] = []
        for dialect in self._candidates(sample):
            rows = parse_csv_text(sample, dialect)
            p = pattern_score(rows)
            t = type_score(rows)
            scored.append(ScoredDialect(dialect, p * t, p, t))
        # Stable sort: score descending, then candidate preference order
        # (enumeration order) ascending via the stable sort guarantee.
        scored.sort(key=lambda s: -s.score)
        return scored

    # ------------------------------------------------------------------
    def _sample(self, text: str) -> str:
        lines = text.splitlines(keepends=True)
        return "".join(lines[: self.max_lines])

    def _candidates(self, sample: str) -> list[Dialect]:
        present = set(sample)
        delimiters = [d for d in CANDIDATE_DELIMITERS if d in present]
        if not delimiters:
            # A file with no candidate delimiter is a one-column file;
            # default to the standard dialect.
            delimiters = [","]
        quotes = [q for q in CANDIDATE_QUOTES if not q or q in present]
        if "" not in quotes:
            quotes.append("")
        escapes = [e for e in CANDIDATE_ESCAPES if not e or e in present]
        if "" not in escapes:
            escapes.append("")

        candidates: list[Dialect] = []
        for delimiter in delimiters:
            for quote in quotes:
                if quote == delimiter:
                    continue
                for escape in escapes:
                    if escape and escape in (delimiter, quote):
                        continue
                    candidates.append(
                        Dialect(
                            delimiter=delimiter,
                            quotechar=quote,
                            escapechar=escape,
                        )
                    )
        return candidates


def detect_dialect(text: str, max_lines: int = 100) -> Dialect:
    """Convenience wrapper: detect the dialect of ``text``."""
    return DialectDetector(max_lines=max_lines).detect(text)
