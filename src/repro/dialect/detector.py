"""Data-consistency dialect detection.

The detector enumerates candidate dialects (delimiters actually present
in the text crossed with quote and escape options), parses the text
under each, and scores every parse with

    Q(dialect) = pattern_score * type_score

as in van den Burg et al.  The highest-scoring dialect is returned;
ties break deterministically in favour of more conventional dialects
(comma before semicolon before tab, quoting before no quoting) so that
detection is stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialect.dialect import Dialect
from repro.dialect.patterns import pattern_score
from repro.dialect.type_score import type_score
from repro.errors import DialectError
from repro.parsing import parse_csv_text

#: Delimiters considered, in tie-break preference order.
CANDIDATE_DELIMITERS: tuple[str, ...] = (",", ";", "\t", "|", ":", " ", "^", "~")

#: Quote characters considered, in tie-break preference order.
CANDIDATE_QUOTES: tuple[str, ...] = ('"', "'", "")

#: Escape characters considered.
CANDIDATE_ESCAPES: tuple[str, ...] = ("", "\\")


@dataclass(frozen=True)
class ScoredDialect:
    """A candidate dialect together with its consistency score."""

    dialect: Dialect
    score: float
    pattern: float
    type: float


class DialectDetector:
    """Detects the dialect of a messy CSV text.

    Parameters
    ----------
    max_lines:
        Number of leading lines used for scoring.  Dialect signal
        saturates quickly, so bounding the sample keeps detection fast
        on large files.
    """

    def __init__(self, max_lines: int = 100):
        if max_lines <= 0:
            raise DialectError("max_lines must be positive")
        self.max_lines = max_lines

    # ------------------------------------------------------------------
    def detect(self, text: str) -> Dialect:
        """The best-scoring dialect for ``text``.

        Raises :class:`DialectError` on empty input.
        """
        ranking = self.rank(text)
        if not ranking:
            raise DialectError("cannot detect the dialect of empty text")
        return ranking[0].dialect

    def rank(self, text: str) -> list[ScoredDialect]:
        """All candidate dialects scored and sorted best-first."""
        sample = self._sample(text)
        if not sample.strip():
            return []
        scored: list[ScoredDialect] = []
        for rank, dialect in enumerate(self._candidates(sample)):
            rows = parse_csv_text(sample, dialect)
            p = pattern_score(rows)
            t = type_score(rows)
            scored.append(ScoredDialect(dialect, p * t, p, t))
        # Stable sort: score descending, then candidate preference order
        # (enumeration order) ascending via the stable sort guarantee.
        scored.sort(key=lambda s: -s.score)
        return scored

    # ------------------------------------------------------------------
    def _sample(self, text: str) -> str:
        lines = text.splitlines(keepends=True)
        return "".join(lines[: self.max_lines])

    def _candidates(self, sample: str) -> list[Dialect]:
        present = set(sample)
        delimiters = [d for d in CANDIDATE_DELIMITERS if d in present]
        if not delimiters:
            # A file with no candidate delimiter is a one-column file;
            # default to the standard dialect.
            delimiters = [","]
        quotes = [q for q in CANDIDATE_QUOTES if not q or q in present]
        if "" not in quotes:
            quotes.append("")
        escapes = [e for e in CANDIDATE_ESCAPES if not e or e in present]
        if "" not in escapes:
            escapes.append("")

        candidates: list[Dialect] = []
        for delimiter in delimiters:
            for quote in quotes:
                if quote == delimiter:
                    continue
                for escape in escapes:
                    if escape and escape in (delimiter, quote):
                        continue
                    candidates.append(
                        Dialect(
                            delimiter=delimiter,
                            quotechar=quote,
                            escapechar=escape,
                        )
                    )
        return candidates


def detect_dialect(text: str, max_lines: int = 100) -> Dialect:
    """Convenience wrapper: detect the dialect of ``text``."""
    return DialectDetector(max_lines=max_lines).detect(text)
