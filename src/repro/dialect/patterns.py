"""Pattern score for the data-consistency dialect measure.

Each parsed record is abstracted to its number of cells; the *pattern
score* rewards dialects under which most records share the same, long
row pattern.  Following van den Burg et al., for every distinct row
pattern ``k`` appearing ``N_k`` times with ``L_k`` cells, the score is

    P = (1 / |rows|) * sum_k  N_k * (L_k - 1) / L_k

so that single-cell rows (the degenerate parse produced by a wrong
delimiter) contribute nothing, while wide and consistent parses score
close to the number of rows that share the dominant pattern.
"""

from __future__ import annotations

from collections import Counter


def row_pattern(record: list[str]) -> int:
    """Abstraction of a record used for pattern grouping: its width."""
    return len(record)


def pattern_score(rows: list[list[str]], eps: float = 1e-10) -> float:
    """Pattern score of a parse; higher is more consistent.

    Returns ``eps`` for an empty parse so that the product with the
    type score never degenerates to exactly zero.
    """
    if not rows:
        return eps
    counts = Counter(row_pattern(r) for r in rows)
    total = sum(counts.values())
    score = 0.0
    for length, occurrences in counts.items():
        if length <= 0:
            continue
        # (L - 1) / L: a one-cell pattern is worthless, wide patterns
        # asymptotically approach weight 1 per occurrence.
        score += occurrences * (length - 1) / length
    return max(score / total, eps)
