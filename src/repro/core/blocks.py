"""Algorithm 1 — block size calculation.

The ``BlockSize`` cell feature is the size of the *connected
component* of non-empty cells containing a cell, under 4-adjacency
(vertical/horizontal neighbours).  The paper motivates it by the
observation that non-data regions (notes, metadata, aggregation
blocks) are usually smaller than tables.

The published pseudo-code is an iterative depth-first expansion over
untouched non-empty cells; this module now delegates to the columnar
:class:`~repro.core.profile.TableProfile`, whose run-based union-find
labels the same components without per-cell Python (the DFS reference
implementation lives on in ``tests/test_profile_parity.py``, which
pins equality).  The dict views below remain the public Algorithm 1
API; the cell feature extractor reads the profile's
``block_size_grid`` directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import table_profile
from repro.types import Table


def block_sizes(table: Table) -> dict[tuple[int, int], int]:
    """Raw block size for every non-empty cell.

    Returns a mapping from ``(row, col)`` of each non-empty cell to the
    number of cells in its connected component.
    """
    profile = table_profile(table)
    rows, cols = np.nonzero(profile.non_empty)
    sizes = profile.block_size_grid[rows, cols]
    return {
        (int(i), int(j)): int(size)
        for i, j, size in zip(rows, cols, sizes)
    }


def normalized_block_sizes(table: Table) -> dict[tuple[int, int], float]:
    """Block sizes normalized by the size of the file (total cells).

    Matches line 14 of Algorithm 1: ``bs <- normalize(bs)`` with the
    file size as the normalizer, keeping the feature in [0, 1].
    """
    total = table.n_rows * table.n_cols
    if total == 0:
        return {}
    return {
        position: size / total
        for position, size in block_sizes(table).items()
    }
