"""Algorithm 1 — block size calculation.

The ``BlockSize`` cell feature is the size of the *connected
component* of non-empty cells containing a cell, under 4-adjacency
(vertical/horizontal neighbours).  The paper motivates it by the
observation that non-data regions (notes, metadata, aggregation
blocks) are usually smaller than tables.

The implementation below follows the published pseudo-code: an
iterative depth-first expansion over untouched non-empty cells, O(n)
in the number of non-empty cells.
"""

from __future__ import annotations

from repro.types import Table


def block_sizes(table: Table) -> dict[tuple[int, int], int]:
    """Raw block size for every non-empty cell.

    Returns a mapping from ``(row, col)`` of each non-empty cell to the
    number of cells in its connected component.
    """
    non_empty = {
        (cell.row, cell.col) for cell in table.non_empty_cells()
    }
    sizes: dict[tuple[int, int], int] = {}
    visited: set[tuple[int, int]] = set()

    for start in non_empty:
        if start in visited:
            continue
        # Depth-first expansion of the component containing ``start``.
        component: list[tuple[int, int]] = []
        stack = [start]
        visited.add(start)
        while stack:
            row, col = stack.pop()
            component.append((row, col))
            for neighbour in (
                (row - 1, col),
                (row + 1, col),
                (row, col - 1),
                (row, col + 1),
            ):
                if neighbour in non_empty and neighbour not in visited:
                    visited.add(neighbour)
                    stack.append(neighbour)
        size = len(component)
        for position in component:
            sizes[position] = size
    return sizes


def normalized_block_sizes(table: Table) -> dict[tuple[int, int], float]:
    """Block sizes normalized by the size of the file (total cells).

    Matches line 14 of Algorithm 1: ``bs <- normalize(bs)`` with the
    file size as the normalizer, keeping the feature in [0, 1].
    """
    total = table.n_rows * table.n_cols
    if total == 0:
        return {}
    return {
        position: size / total
        for position, size in block_sizes(table).items()
    }
