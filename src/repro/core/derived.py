"""Algorithm 2 — derived cell detection.

A *derived* cell aggregates other numeric cells.  Following the
paper's three observations — (i) aggregation happens along the cell's
own row or column, (ii) aggregated values are close by, (iii) sum and
mean dominate — the detector:

1. finds *anchoring cells* containing an aggregation keyword;
2. treats the numeric cells sharing a row (or column) with an anchor
   as derived-cell *candidates*;
3. walks away from the candidate row (up then down; for column
   candidates left then right), accumulating a sum vector over the
   candidate columns (rows), nearest rows first;
4. after each accumulation step compares the candidates with the sum
   (and the running mean), element-wise within an aggregation delta
   ``d``; if the fraction of matching candidates exceeds the coverage
   threshold ``c``, all candidates are marked derived.

The paper sets ``d = 0.1`` and ``c = 0.5`` and reports insensitivity
to both; the ablation benchmark sweeps them.

An ``exhaustive`` anchor mode (every row/column acts as its own
anchor) is provided for the ablation of the keyword-anchoring design
decision — the paper's error analysis attributes most derived-as-data
mistakes to unanchored derived lines.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import TableProfile, table_profile
from repro.errors import InvalidParameterError
from repro.types import Table

#: Aggregation functions the detector recognizes.  The paper ships sum
#: and mean ("the two dominant aggregation functions"); min, max and
#: median implement its stated future-work extension ("recognizing
#: more aggregation functions").
SUPPORTED_FUNCTIONS: tuple[str, ...] = ("sum", "mean", "min", "max", "median")

#: The paper's default configuration.
DEFAULT_FUNCTIONS: tuple[str, ...] = ("sum", "mean")


def numeric_grid(table: Table) -> np.ndarray:
    """``(n_rows, n_cols)`` float array; non-numeric cells are NaN.

    A copy of the table profile's columnar
    :attr:`~repro.core.profile.TableProfile.numeric_grid` (every cell
    parsed once per file via the unique-value dispatch); the copy
    keeps the memoized array safe from caller mutation.
    """
    return table_profile(table).numeric_grid.copy()


class DerivedDetector:
    """Detects derived (aggregating) cells in a table.

    Parameters
    ----------
    delta:
        Element-wise slack when comparing a candidate with an
        aggregate.  Interpreted as an absolute tolerance, optionally
        scaled by the candidate magnitude with ``relative=True``.
    coverage:
        Minimum fraction of candidates that must match for the whole
        candidate set to be marked derived.
    functions:
        Subset of :data:`SUPPORTED_FUNCTIONS` to test.
    anchor_mode:
        ``"keyword"`` (the paper's algorithm) anchors on aggregation
        keywords; ``"exhaustive"`` treats every row and column with
        numeric cells as anchored — slower, used for ablation.
    relative:
        Whether ``delta`` scales with the candidate's magnitude.
    """

    def __init__(
        self,
        delta: float = 0.1,
        coverage: float = 0.5,
        functions: tuple[str, ...] = DEFAULT_FUNCTIONS,
        anchor_mode: str = "keyword",
        relative: bool = False,
    ):
        if delta <= 0:
            raise InvalidParameterError("delta must be positive")
        if not 0.0 < coverage <= 1.0:
            raise InvalidParameterError("coverage must be in (0, 1]")
        unknown = set(functions) - set(SUPPORTED_FUNCTIONS)
        if unknown:
            raise InvalidParameterError(f"unknown functions: {sorted(unknown)}")
        if anchor_mode not in ("keyword", "exhaustive"):
            raise InvalidParameterError(
                f"anchor_mode must be 'keyword' or 'exhaustive', "
                f"got {anchor_mode!r}"
            )
        self.delta = delta
        self.coverage = coverage
        self.functions = tuple(functions)
        self.anchor_mode = anchor_mode
        self.relative = relative

    @property
    def cache_key(self) -> str:
        """Stable description of this configuration for feature-cache
        keys: any parameter change must invalidate cached matrices."""
        return (
            f"derived(delta={self.delta!r},coverage={self.coverage!r},"
            f"functions={','.join(self.functions)},"
            f"anchor={self.anchor_mode},relative={int(self.relative)})"
        )

    # ------------------------------------------------------------------
    def detect(self, table: Table) -> set[tuple[int, int]]:
        """All detected derived cell positions in ``table``.

        Delegates to the table's memoized profile, so the line and
        cell extractors (which run identically-configured detectors
        over the same table) share one detection pass.  The returned
        set is shared — treat it as read-only.
        """
        return table_profile(table).derived_cells(self)

    def detect_profile(
        self, profile: TableProfile
    ) -> set[tuple[int, int]]:
        """The detection pass proper, over pre-computed columnar
        primitives (called by
        :meth:`~repro.core.profile.TableProfile.derived_cells`)."""
        grid = profile.numeric_grid
        anchors = self._anchoring_cells(profile, grid)
        detected: set[tuple[int, int]] = set()
        checked_rows: set[int] = set()
        checked_cols: set[int] = set()
        for row, col in anchors:
            if row not in checked_rows:
                checked_rows.add(row)
                if self._row_is_derived(grid, row):
                    detected.update(
                        (row, j)
                        for j in np.nonzero(~np.isnan(grid[row]))[0]
                    )
            if col not in checked_cols:
                checked_cols.add(col)
                if self._column_is_derived(grid, col):
                    detected.update(
                        (int(i), col)
                        for i in np.nonzero(~np.isnan(grid[:, col]))[0]
                    )
        return detected

    # ------------------------------------------------------------------
    def _anchoring_cells(
        self, profile: TableProfile, grid: np.ndarray
    ) -> list[tuple[int, int]]:
        if self.anchor_mode == "keyword":
            # Row-major order of the keyword mask matches the original
            # non_empty_cells() scan (a keyword implies a non-empty
            # cell, and stripping never changes tokenization).
            return [
                (int(i), int(j))
                for i, j in np.argwhere(profile.keyword_mask)
            ]
        # Exhaustive mode: one pseudo-anchor per row and per column
        # that contains at least one numeric cell.
        anchors: list[tuple[int, int]] = []
        rows_with_numbers = np.nonzero((~np.isnan(grid)).any(axis=1))[0]
        cols_with_numbers = np.nonzero((~np.isnan(grid)).any(axis=0))[0]
        anchors.extend((int(i), 0) for i in rows_with_numbers)
        anchors.extend((0, int(j)) for j in cols_with_numbers)
        return anchors

    # ------------------------------------------------------------------
    def _tolerance(self, candidates: np.ndarray) -> np.ndarray:
        if self.relative:
            return self.delta * np.maximum(1.0, np.abs(candidates))
        return np.full_like(candidates, self.delta)

    def _matches(self, candidates: np.ndarray, aggregate: np.ndarray) -> bool:
        """Coverage test of candidates against one aggregate vector."""
        close = np.abs(candidates - aggregate) < self._tolerance(candidates)
        return bool(close.mean() > self.coverage)

    def _scan(self, candidates: np.ndarray, contributions: np.ndarray) -> bool:
        """Walk away from the candidates accumulating ``contributions``.

        ``contributions`` is an ``(n_steps, n_candidates)`` array whose
        row ``i`` holds the numeric values (NaN as 0) at the candidate
        positions, ``i + 1`` steps away from the candidate line, nearest
        first — exactly the expansion order of Algorithm 2.
        """
        if contributions.shape[0] == 0:
            return False
        order_statistics = any(
            name in self.functions for name in ("min", "max", "median")
        )
        running_sum = np.zeros_like(candidates)
        for step, row in enumerate(contributions, start=1):
            running_sum = running_sum + row
            # Never mark candidates matching an all-zero aggregate —
            # zero sums arise trivially from empty regions.
            if not np.any(running_sum):
                continue
            if "sum" in self.functions and self._matches(
                candidates, running_sum
            ):
                return True
            if (
                "mean" in self.functions
                and step > 1
                and self._matches(candidates, running_sum / step)
            ):
                return True
            # Order statistics (future-work extension): computed over
            # the window of the `step` nearest contribution rows.  A
            # single-row window would trivially match any copy of the
            # adjacent line, so require at least two rows.
            if order_statistics and step > 1:
                window = contributions[:step]
                if "min" in self.functions and self._matches(
                    candidates, window.min(axis=0)
                ):
                    return True
                if "max" in self.functions and self._matches(
                    candidates, window.max(axis=0)
                ):
                    return True
                if "median" in self.functions and self._matches(
                    candidates, np.median(window, axis=0)
                ):
                    return True
        return False

    def _row_is_derived(self, grid: np.ndarray, row: int) -> bool:
        cols = np.nonzero(~np.isnan(grid[row]))[0]
        if len(cols) == 0:
            return False
        candidates = grid[row, cols]
        n_rows = grid.shape[0]
        # Upwards: rows row-1, row-2, ... 0 (nearest first).
        upward = np.nan_to_num(grid[:row, :][::-1][:, cols], nan=0.0)
        if self._scan(candidates, upward):
            return True
        # Downwards: rows row+1 ... n-1.
        downward = np.nan_to_num(grid[row + 1 : n_rows, :][:, cols], nan=0.0)
        return self._scan(candidates, downward)

    def _column_is_derived(self, grid: np.ndarray, col: int) -> bool:
        rows = np.nonzero(~np.isnan(grid[:, col]))[0]
        if len(rows) == 0:
            return False
        candidates = grid[rows, col]
        n_cols = grid.shape[1]
        # Leftwards: columns col-1 ... 0 (nearest first).
        leftward = np.nan_to_num(
            grid[:, :col][:, ::-1][rows, :].T, nan=0.0
        )
        if self._scan(candidates, leftward):
            return True
        # Rightwards: columns col+1 ... n-1.
        rightward = np.nan_to_num(
            grid[:, col + 1 : n_cols][rows, :].T, nan=0.0
        )
        return self._scan(candidates, rightward)
