"""The Strudel-C cell feature set (Table 2 of the paper).

Features are produced for every *non-empty* cell (only those are
classified).  The 37 columns:

===========================  =========================================
Content (13)                 ValueLength, DataType,
                             HasDerivedKeywords,
                             RowHasDerivedKeywords,
                             ColumnHasDerivedKeywords, RowPosition,
                             ColumnPosition, LineClassProbability
                             (six columns, one per class)
Contextual (23)              IsEmptyRowBefore, IsEmptyRowAfter,
                             IsEmptyColumnLeft, IsEmptyColumnRight,
                             RowEmptyCellRatio, ColumnEmptyCellRatio,
                             BlockSize, NeighborValueLength (eight
                             surrounding cells), NeighborDataType
                             (eight surrounding cells)
Computational (1)            IsAggregation
===========================  =========================================

Conventions (the paper leaves these implicit):

* ``ValueLength`` and the neighbour value lengths are normalized per
  file by the longest cell value, keeping them in [0, 1];
* neighbours outside the table get the paper's ``-1`` default for both
  value length and data type;
* a row/column adjacent to the file boundary counts as "empty" for the
  ``IsEmptyRowBefore/After`` and ``IsEmptyColumnLeft/Right`` flags.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import normalized_block_sizes
from repro.core.datatypes import infer_data_type
from repro.core.derived import DerivedDetector
from repro.core.keywords import contains_aggregation_keyword
from repro.types import CONTENT_CLASSES, DataType, MISSING_NEIGHBOR, Table

_NEIGHBOR_OFFSETS: tuple[tuple[int, int], ...] = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)
_NEIGHBOR_TAGS: tuple[str, ...] = (
    "nw", "n", "ne", "w", "e", "sw", "s", "se"
)

CELL_FEATURE_NAMES: tuple[str, ...] = (
    (
        "value_length",
        "data_type",
        "has_derived_keywords",
        "row_has_derived_keywords",
        "column_has_derived_keywords",
        "row_position",
        "column_position",
    )
    + tuple(f"line_class_probability_{c.value}" for c in CONTENT_CLASSES)
    + (
        "is_empty_row_before",
        "is_empty_row_after",
        "is_empty_column_left",
        "is_empty_column_right",
        "row_empty_cell_ratio",
        "column_empty_cell_ratio",
        "block_size",
    )
    + tuple(f"neighbor_value_length_{tag}" for tag in _NEIGHBOR_TAGS)
    + tuple(f"neighbor_data_type_{tag}" for tag in _NEIGHBOR_TAGS)
    + ("is_aggregation",)
)

#: Feature-group partition used by the feature-group ablation.
CELL_FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "content": CELL_FEATURE_NAMES[:13],
    "contextual": CELL_FEATURE_NAMES[13:36],
    "computational": CELL_FEATURE_NAMES[36:],
}


class CellFeatureExtractor:
    """Computes the Table 2 feature matrix for all non-empty cells.

    Parameters
    ----------
    detector:
        Derived cell detector behind ``IsAggregation``; defaults to
        the paper's configuration.
    """

    def __init__(self, detector: DerivedDetector | None = None):
        self.detector = detector or DerivedDetector()

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Column names of the matrix produced by :meth:`extract`."""
        return CELL_FEATURE_NAMES

    @property
    def cache_key(self) -> str:
        """Stable configuration key for corpus-level feature caches.

        The line-probability input is *not* part of this key; callers
        hash it separately (see ``StrudelCellClassifier``).
        """
        return f"cell-v1({self.detector.cache_key})"

    # ------------------------------------------------------------------
    def extract(
        self,
        table: Table,
        line_probabilities: np.ndarray | None = None,
    ) -> tuple[list[tuple[int, int]], np.ndarray]:
        """Positions and features of every non-empty cell.

        Parameters
        ----------
        table:
            The verbose CSV table.
        line_probabilities:
            ``(n_rows, 6)`` matrix of Strudel-L class probabilities.
            ``None`` falls back to the uninformative uniform vector so
            the extractor can run stand-alone.

        Returns
        -------
        positions, features:
            ``positions[i]`` is the ``(row, col)`` of feature row ``i``.
        """
        n_rows, n_cols = table.shape
        if line_probabilities is None:
            line_probabilities = np.full(
                (n_rows, len(CONTENT_CLASSES)), 1.0 / len(CONTENT_CLASSES)
            )
        if line_probabilities.shape != (n_rows, len(CONTENT_CLASSES)):
            raise ValueError(
                f"line_probabilities must have shape "
                f"({n_rows}, {len(CONTENT_CLASSES)}), got "
                f"{line_probabilities.shape}"
            )

        rows = list(table.rows())
        types = np.array(
            [[int(infer_data_type(v)) for v in row] for row in rows],
            dtype=np.float64,
        )
        lengths = np.array(
            [[float(len(v.strip())) for v in row] for row in rows],
            dtype=np.float64,
        )
        max_length = lengths.max() if lengths.size else 1.0
        if max_length <= 0:
            max_length = 1.0
        norm_lengths = lengths / max_length

        empty = types == float(DataType.EMPTY)
        empty_row = empty.all(axis=1)
        empty_col = empty.all(axis=0)
        row_empty_ratio = empty.mean(axis=1)
        col_empty_ratio = empty.mean(axis=0)

        keyword = np.zeros((n_rows, n_cols), dtype=bool)
        for i, row in enumerate(rows):
            for j, value in enumerate(row):
                if value.strip() and contains_aggregation_keyword(value):
                    keyword[i, j] = True
        row_keyword = keyword.any(axis=1)
        col_keyword = keyword.any(axis=0)

        blocks = normalized_block_sizes(table)
        derived = self.detector.detect(table)

        positions: list[tuple[int, int]] = []
        feature_rows: list[np.ndarray] = []
        for cell in table.non_empty_cells():
            i, j = cell.row, cell.col
            positions.append((i, j))
            feature_rows.append(
                self._cell_features(
                    i, j, n_rows, n_cols, types, norm_lengths, empty_row,
                    empty_col, row_empty_ratio, col_empty_ratio, keyword,
                    row_keyword, col_keyword, blocks, derived,
                    line_probabilities,
                )
            )
        if feature_rows:
            return positions, np.vstack(feature_rows)
        return positions, np.zeros((0, len(CELL_FEATURE_NAMES)))

    # ------------------------------------------------------------------
    def _cell_features(
        self, i, j, n_rows, n_cols, types, norm_lengths, empty_row,
        empty_col, row_empty_ratio, col_empty_ratio, keyword, row_keyword,
        col_keyword, blocks, derived, line_probabilities,
    ) -> np.ndarray:
        content = [
            norm_lengths[i, j],
            types[i, j],
            1.0 if keyword[i, j] else 0.0,
            1.0 if row_keyword[i] else 0.0,
            1.0 if col_keyword[j] else 0.0,
            i / (n_rows - 1) if n_rows > 1 else 0.0,
            j / (n_cols - 1) if n_cols > 1 else 0.0,
        ]
        content.extend(float(p) for p in line_probabilities[i])

        contextual = [
            1.0 if (i == 0 or empty_row[i - 1]) else 0.0,
            1.0 if (i == n_rows - 1 or empty_row[i + 1]) else 0.0,
            1.0 if (j == 0 or empty_col[j - 1]) else 0.0,
            1.0 if (j == n_cols - 1 or empty_col[j + 1]) else 0.0,
            float(row_empty_ratio[i]),
            float(col_empty_ratio[j]),
            blocks.get((i, j), 0.0),
        ]
        neighbor_lengths = []
        neighbor_types = []
        for di, dj in _NEIGHBOR_OFFSETS:
            ni, nj = i + di, j + dj
            if 0 <= ni < n_rows and 0 <= nj < n_cols:
                neighbor_lengths.append(float(norm_lengths[ni, nj]))
                neighbor_types.append(float(types[ni, nj]))
            else:
                neighbor_lengths.append(float(MISSING_NEIGHBOR))
                neighbor_types.append(float(MISSING_NEIGHBOR))

        computational = [1.0 if (i, j) in derived else 0.0]
        return np.array(
            content + contextual + neighbor_lengths + neighbor_types
            + computational
        )
