"""The Strudel-C cell feature set (Table 2 of the paper).

Features are produced for every *non-empty* cell (only those are
classified).  The 37 columns:

===========================  =========================================
Content (13)                 ValueLength, DataType,
                             HasDerivedKeywords,
                             RowHasDerivedKeywords,
                             ColumnHasDerivedKeywords, RowPosition,
                             ColumnPosition, LineClassProbability
                             (six columns, one per class)
Contextual (23)              IsEmptyRowBefore, IsEmptyRowAfter,
                             IsEmptyColumnLeft, IsEmptyColumnRight,
                             RowEmptyCellRatio, ColumnEmptyCellRatio,
                             BlockSize, NeighborValueLength (eight
                             surrounding cells), NeighborDataType
                             (eight surrounding cells)
Computational (1)            IsAggregation
===========================  =========================================

Conventions (the paper leaves these implicit):

* ``ValueLength`` and the neighbour value lengths are normalized per
  file by the longest cell value, keeping them in [0, 1];
* neighbours outside the table get the paper's ``-1`` default for both
  value length and data type;
* a row/column adjacent to the file boundary counts as "empty" for the
  ``IsEmptyRowBefore/After`` and ``IsEmptyColumnLeft/Right`` flags.

The matrix is assembled column-wise from the shared
:class:`~repro.core.profile.TableProfile` — data types, lengths,
keyword flags, emptiness aggregates and block sizes are the same
arrays the line extractor and derived-cell detector consume, computed
once per table.  Neighbour features use a ``-1``-padded copy of each
grid so the eight offsets become eight shifted views instead of
per-cell bounds checks.  ``tests/test_profile_parity.py`` pins the
output byte-identical to the original per-cell implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.derived import DerivedDetector
from repro.errors import InvalidParameterError
from repro.core.profile import table_profile
from repro.types import CONTENT_CLASSES, MISSING_NEIGHBOR, Table

_NEIGHBOR_OFFSETS: tuple[tuple[int, int], ...] = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)
_NEIGHBOR_TAGS: tuple[str, ...] = (
    "nw", "n", "ne", "w", "e", "sw", "s", "se"
)

CELL_FEATURE_NAMES: tuple[str, ...] = (
    (
        "value_length",
        "data_type",
        "has_derived_keywords",
        "row_has_derived_keywords",
        "column_has_derived_keywords",
        "row_position",
        "column_position",
    )
    + tuple(f"line_class_probability_{c.value}" for c in CONTENT_CLASSES)
    + (
        "is_empty_row_before",
        "is_empty_row_after",
        "is_empty_column_left",
        "is_empty_column_right",
        "row_empty_cell_ratio",
        "column_empty_cell_ratio",
        "block_size",
    )
    + tuple(f"neighbor_value_length_{tag}" for tag in _NEIGHBOR_TAGS)
    + tuple(f"neighbor_data_type_{tag}" for tag in _NEIGHBOR_TAGS)
    + ("is_aggregation",)
)

#: Feature-group partition used by the feature-group ablation.
CELL_FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "content": CELL_FEATURE_NAMES[:13],
    "contextual": CELL_FEATURE_NAMES[13:36],
    "computational": CELL_FEATURE_NAMES[36:],
}


class CellFeatureExtractor:
    """Computes the Table 2 feature matrix for all non-empty cells.

    Parameters
    ----------
    detector:
        Derived cell detector behind ``IsAggregation``; defaults to
        the paper's configuration.
    """

    def __init__(self, detector: DerivedDetector | None = None):
        self.detector = detector or DerivedDetector()

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Column names of the matrix produced by :meth:`extract`."""
        return CELL_FEATURE_NAMES

    @property
    def cache_key(self) -> str:
        """Stable configuration key for corpus-level feature caches.

        The line-probability input is *not* part of this key; callers
        hash it separately (see ``StrudelCellClassifier``).
        """
        return f"cell-v1({self.detector.cache_key})"

    # ------------------------------------------------------------------
    def extract(
        self,
        table: Table,
        line_probabilities: np.ndarray | None = None,
    ) -> tuple[list[tuple[int, int]], np.ndarray]:
        """Positions and features of every non-empty cell.

        Parameters
        ----------
        table:
            The verbose CSV table.
        line_probabilities:
            ``(n_rows, 6)`` matrix of Strudel-L class probabilities.
            ``None`` falls back to the uninformative uniform vector so
            the extractor can run stand-alone.

        Returns
        -------
        positions, features:
            ``positions[i]`` is the ``(row, col)`` of feature row ``i``.
        """
        n_rows, n_cols = table.shape
        n_classes = len(CONTENT_CLASSES)
        if line_probabilities is None:
            line_probabilities = np.full(
                (n_rows, n_classes), 1.0 / n_classes
            )
        if line_probabilities.shape != (n_rows, n_classes):
            raise InvalidParameterError(
                f"line_probabilities must have shape "
                f"({n_rows}, {n_classes}), got "
                f"{line_probabilities.shape}"
            )

        profile = table_profile(table)
        rr, cc = np.nonzero(profile.non_empty)
        positions = [(int(i), int(j)) for i, j in zip(rr, cc)]
        if not positions:
            return positions, np.zeros((0, len(CELL_FEATURE_NAMES)))

        types = profile.dtype_grid.astype(np.float64)
        lengths = profile.value_lengths.astype(np.float64)
        max_length = lengths.max() if lengths.size else 1.0
        if max_length <= 0:
            max_length = 1.0
        norm_lengths = lengths / max_length

        probabilities = np.asarray(line_probabilities, dtype=np.float64)
        derived = self.detector.detect(table)
        derived_mask = np.zeros((n_rows, n_cols), dtype=bool)
        for i, j in derived:
            derived_mask[i, j] = True

        features = np.empty((len(positions), len(CELL_FEATURE_NAMES)))
        # Content features.
        features[:, 0] = norm_lengths[rr, cc]
        features[:, 1] = types[rr, cc]
        features[:, 2] = profile.keyword_mask[rr, cc]
        features[:, 3] = profile.row_keyword[rr]
        features[:, 4] = profile.col_keyword[cc]
        features[:, 5] = rr / (n_rows - 1) if n_rows > 1 else 0.0
        features[:, 6] = cc / (n_cols - 1) if n_cols > 1 else 0.0
        features[:, 7 : 7 + n_classes] = probabilities[rr]

        # Contextual features: boundary rows/columns count as empty.
        base = 7 + n_classes
        padded_empty_row = np.concatenate(
            [[True], profile.empty_row, [True]]
        )
        padded_empty_col = np.concatenate(
            [[True], profile.empty_col, [True]]
        )
        features[:, base + 0] = padded_empty_row[rr]
        features[:, base + 1] = padded_empty_row[rr + 2]
        features[:, base + 2] = padded_empty_col[cc]
        features[:, base + 3] = padded_empty_col[cc + 2]
        features[:, base + 4] = profile.row_empty_ratio[rr]
        features[:, base + 5] = profile.col_empty_ratio[cc]
        features[:, base + 6] = (
            profile.block_size_grid[rr, cc] / (n_rows * n_cols)
        )

        for offset, (di, dj) in enumerate(_NEIGHBOR_OFFSETS):
            features[:, base + 7 + offset] = _shifted(
                norm_lengths, rr, cc, di, dj
            )
            features[:, base + 15 + offset] = _shifted(
                types, rr, cc, di, dj
            )

        # Computational feature.
        features[:, base + 23] = derived_mask[rr, cc]
        return positions, features


def _shifted(
    grid: np.ndarray, rr: np.ndarray, cc: np.ndarray, di: int, dj: int
) -> np.ndarray:
    """Values of ``grid`` at ``(rr + di, cc + dj)`` with the paper's
    ``-1`` default for neighbours beyond the table boundary."""
    padded = np.full(
        (grid.shape[0] + 2, grid.shape[1] + 2), float(MISSING_NEIGHBOR)
    )
    padded[1:-1, 1:-1] = grid
    return padded[rr + 1 + di, cc + 1 + dj]
