"""Strudel classifiers: line level, cell level, and the full pipeline.

* :class:`StrudelLineClassifier` — Strudel-L, a multi-class random
  forest over the Table 1 line features.
* :class:`StrudelCellClassifier` — Strudel-C, a multi-class random
  forest over the Table 2 cell features; runs Strudel-L first and
  feeds its per-line probability vectors in as features (Section 5.4).
* :class:`LineToCellBaseline` — the Line-C baseline, which "simply
  extends the predicted class of a line ... to each non-empty cell in
  this line".
* :class:`StrudelPipeline` — the end-to-end flow of Figure 2: dialect
  detection, parsing, cropping, line classification, cell
  classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.cell_features import CellFeatureExtractor
from repro.core.line_features import LineFeatureExtractor
from repro.dialect.detector import detect_dialect
from repro.dialect.dialect import Dialect
from repro.errors import ConfigurationError, NotFittedError
from repro.io.cropping import crop_table
from repro.parsing import parse_csv_text
from repro.types import (
    CLASS_TO_INDEX,
    CONTENT_CLASSES,
    INDEX_TO_CLASS,
    AnnotatedFile,
    CellClass,
    Table,
)

#: Forest size used by default.  The paper uses scikit-learn defaults
#: (100 trees); experiments may pass a smaller budget for speed.
DEFAULT_N_ESTIMATORS = 100

#: Constructor for the default per-classifier model, registered by the
#: composition root.  ``core`` may not import ``ml`` (layer rule
#: R002), so the top-level ``repro`` package — which Python always
#: initializes before any ``repro.*`` submodule — binds the random
#: forest here at import time via
#: :func:`set_default_classifier_factory`.
_default_classifier_factory: Callable[..., Any] | None = None


def set_default_classifier_factory(
    factory: Callable[..., Any]
) -> None:
    """Register the estimator constructor used when no explicit
    ``classifier_factory`` is passed to a Strudel classifier.

    The factory is called as ``factory(n_estimators=…,
    random_state=…)`` and must return an object with ``fit`` /
    ``predict_proba`` / ``classes_``.  Called by ``repro/__init__.py``
    with the random forest; tests may rebind it to swap the backbone.
    """
    global _default_classifier_factory
    _default_classifier_factory = factory


def _default_classifier(
    n_estimators: int, random_state: int | None
) -> Any:
    if _default_classifier_factory is None:
        raise ConfigurationError(
            "no default classifier factory registered; import the "
            "'repro' package (which binds the random forest) or pass "
            "classifier_factory= explicitly"
        )
    return _default_classifier_factory(
        n_estimators=n_estimators, random_state=random_state
    )


class StrudelLineClassifier:
    """Strudel-L: random-forest line classification.

    Parameters
    ----------
    extractor:
        Line feature extractor; defaults to the paper's Table 1 set.
    n_estimators, random_state:
        Forest configuration.
    feature_subset:
        Optional tuple of feature names to keep (feature-group
        ablations); ``None`` keeps all.
    """

    def __init__(
        self,
        extractor: LineFeatureExtractor | None = None,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        random_state: int | None = None,
        feature_subset: tuple[str, ...] | None = None,
        classifier_factory=None,
    ):
        self.extractor = extractor or LineFeatureExtractor()
        self.n_estimators = n_estimators
        self.random_state = random_state
        self.feature_subset = feature_subset
        self._classifier_factory = classifier_factory
        self._model = None
        self._columns: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _make_model(self):
        if self._classifier_factory is not None:
            return self._classifier_factory()
        return _default_classifier(self.n_estimators, self.random_state)

    def _select_columns(self) -> np.ndarray:
        names = self.extractor.feature_names
        if self.feature_subset is None:
            return np.arange(len(names))
        index = {name: i for i, name in enumerate(names)}
        missing = [n for n in self.feature_subset if n not in index]
        if missing:
            raise ValueError(f"unknown line features: {missing}")
        return np.array([index[n] for n in self.feature_subset])

    # ------------------------------------------------------------------
    def fit(self, files: list[AnnotatedFile]) -> "StrudelLineClassifier":
        """Train on the non-empty lines of ``files``."""
        self._columns = self._select_columns()
        matrices: list[np.ndarray] = []
        labels: list[int] = []
        for annotated in files:
            features = self.extractor.extract(annotated.table)
            for i in annotated.non_empty_line_indices():
                matrices.append(features[i])
                labels.append(CLASS_TO_INDEX[annotated.line_labels[i]])
        X = np.vstack(matrices)[:, self._columns]
        y = np.asarray(labels)
        self._model = self._make_model().fit(X, y)
        return self

    def _require_fitted(self) -> None:
        if self._model is None:
            raise NotFittedError("StrudelLineClassifier must be fitted first")

    # ------------------------------------------------------------------
    def predict_proba(self, table: Table) -> np.ndarray:
        """``(n_rows, 6)`` class probability matrix over all lines.

        Probabilities are produced for every line (including empty
        ones, whose rows are only consumed as features downstream);
        columns follow :data:`~repro.types.CONTENT_CLASSES` order.
        """
        self._require_fitted()
        features = self.extractor.extract(table)[:, self._columns]
        raw = self._model.predict_proba(features)
        aligned = np.zeros((features.shape[0], len(CONTENT_CLASSES)))
        for column, klass in enumerate(self._model.classes_):
            aligned[:, int(klass)] = raw[:, column]
        return aligned

    def predict(self, table: Table) -> list[CellClass]:
        """Predicted class per line; empty lines get ``CellClass.EMPTY``."""
        proba = self.predict_proba(table)
        labels = [INDEX_TO_CLASS[int(k)] for k in np.argmax(proba, axis=1)]
        return [
            CellClass.EMPTY if table.is_empty_row(i) else labels[i]
            for i in range(table.n_rows)
        ]


class StrudelCellClassifier:
    """Strudel-C: random-forest cell classification on Table 2 features.

    Owns (or shares) a :class:`StrudelLineClassifier`, which is fitted
    first so its probability vectors become cell features.
    """

    def __init__(
        self,
        line_classifier: StrudelLineClassifier | None = None,
        extractor: CellFeatureExtractor | None = None,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        random_state: int | None = None,
        feature_subset: tuple[str, ...] | None = None,
        classifier_factory=None,
    ):
        self.line_classifier = line_classifier or StrudelLineClassifier(
            n_estimators=n_estimators, random_state=random_state
        )
        self.extractor = extractor or CellFeatureExtractor()
        self.n_estimators = n_estimators
        self.random_state = random_state
        self.feature_subset = feature_subset
        self._classifier_factory = classifier_factory
        self._model = None
        self._columns: np.ndarray | None = None
        self._line_fitted_here = False

    # ------------------------------------------------------------------
    def _make_model(self):
        if self._classifier_factory is not None:
            return self._classifier_factory()
        return _default_classifier(self.n_estimators, self.random_state)

    def _select_columns(self) -> np.ndarray:
        names = self.extractor.feature_names
        if self.feature_subset is None:
            return np.arange(len(names))
        index = {name: i for i, name in enumerate(names)}
        missing = [n for n in self.feature_subset if n not in index]
        if missing:
            raise ValueError(f"unknown cell features: {missing}")
        return np.array([index[n] for n in self.feature_subset])

    # ------------------------------------------------------------------
    def fit(self, files: list[AnnotatedFile]) -> "StrudelCellClassifier":
        """Train on the non-empty cells of ``files``.

        Fits the line classifier on the same files first (unless the
        caller passed one that is already fitted), then uses its
        probabilities as the ``LineClassProbability`` features.
        """
        if self.line_classifier._model is None:
            self.line_classifier.fit(files)
            self._line_fitted_here = True
        self._columns = self._select_columns()

        matrices: list[np.ndarray] = []
        labels: list[int] = []
        for annotated in files:
            probabilities = self.line_classifier.predict_proba(annotated.table)
            positions, features = self.extractor.extract(
                annotated.table, probabilities
            )
            for (i, j), row in zip(positions, features):
                matrices.append(row)
                labels.append(CLASS_TO_INDEX[annotated.cell_labels[i][j]])
        X = np.vstack(matrices)[:, self._columns]
        y = np.asarray(labels)
        self._model = self._make_model().fit(X, y)
        return self

    def _require_fitted(self) -> None:
        if self._model is None:
            raise NotFittedError("StrudelCellClassifier must be fitted first")

    # ------------------------------------------------------------------
    def predict_with_positions(
        self, table: Table
    ) -> tuple[list[tuple[int, int]], list[CellClass]]:
        """Positions and predicted classes of all non-empty cells."""
        self._require_fitted()
        probabilities = self.line_classifier.predict_proba(table)
        positions, features = self.extractor.extract(table, probabilities)
        if not positions:
            return [], []
        raw = self._model.predict_proba(features[:, self._columns])
        aligned = np.zeros((features.shape[0], len(CONTENT_CLASSES)))
        for column, klass in enumerate(self._model.classes_):
            aligned[:, int(klass)] = raw[:, column]
        labels = [
            INDEX_TO_CLASS[int(k)] for k in np.argmax(aligned, axis=1)
        ]
        return positions, labels

    def predict(self, table: Table) -> dict[tuple[int, int], CellClass]:
        """Mapping from non-empty cell positions to predicted classes."""
        positions, labels = self.predict_with_positions(table)
        return dict(zip(positions, labels))


class LineToCellBaseline:
    """Line-C: extend each line's predicted class to its non-empty cells."""

    def __init__(self, line_classifier: StrudelLineClassifier):
        self.line_classifier = line_classifier

    def fit(self, files: list[AnnotatedFile]) -> "LineToCellBaseline":
        """Fit the underlying line classifier if necessary."""
        if self.line_classifier._model is None:
            self.line_classifier.fit(files)
        return self

    def predict_with_positions(
        self, table: Table
    ) -> tuple[list[tuple[int, int]], list[CellClass]]:
        """Positions and classes of all non-empty cells."""
        line_labels = self.line_classifier.predict(table)
        positions: list[tuple[int, int]] = []
        labels: list[CellClass] = []
        for cell in table.non_empty_cells():
            positions.append((cell.row, cell.col))
            labels.append(line_labels[cell.row])
        return positions, labels

    def predict(self, table: Table) -> dict[tuple[int, int], CellClass]:
        """Mapping from non-empty cell positions to predicted classes."""
        positions, labels = self.predict_with_positions(table)
        return dict(zip(positions, labels))


@dataclass
class StructureResult:
    """Output of the end-to-end pipeline for one input text."""

    dialect: Dialect
    table: Table
    line_classes: list[CellClass]
    cell_classes: dict[tuple[int, int], CellClass]


class StrudelPipeline:
    """The full Figure 2 flow: text in, classified structure out.

    The pipeline owns one Strudel-L and one Strudel-C model; call
    :meth:`fit` with annotated files, then :meth:`analyze` with raw
    CSV text (dialect is detected automatically) or :meth:`analyze_table`
    with an already-parsed table.
    """

    def __init__(
        self,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        random_state: int | None = None,
        crop: bool = True,
    ):
        self.line_classifier = StrudelLineClassifier(
            n_estimators=n_estimators, random_state=random_state
        )
        self.cell_classifier = StrudelCellClassifier(
            line_classifier=self.line_classifier,
            n_estimators=n_estimators,
            random_state=random_state,
        )
        self.crop = crop

    def fit(self, files: list[AnnotatedFile]) -> "StrudelPipeline":
        """Train both classifiers on annotated files."""
        self.cell_classifier.fit(files)
        return self

    def analyze(self, text: str, dialect: Dialect | None = None) -> StructureResult:
        """Classify the structure of raw CSV ``text``."""
        if dialect is None:
            dialect = detect_dialect(text)
        rows = parse_csv_text(text, dialect)
        table = Table(rows if rows else [[""]])
        if self.crop:
            table = crop_table(table)
        line_classes = self.line_classifier.predict(table)
        cell_classes = self.cell_classifier.predict(table)
        return StructureResult(
            dialect=dialect,
            table=table,
            line_classes=line_classes,
            cell_classes=cell_classes,
        )

    def analyze_table(self, table: Table) -> StructureResult:
        """Classify the structure of an already-parsed table."""
        line_classes = self.line_classifier.predict(table)
        cell_classes = self.cell_classifier.predict(table)
        return StructureResult(
            dialect=Dialect.standard(),
            table=table,
            line_classes=line_classes,
            cell_classes=cell_classes,
        )
