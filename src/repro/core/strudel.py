"""Strudel classifiers: line level, cell level, and the full pipeline.

* :class:`StrudelLineClassifier` — Strudel-L, a multi-class random
  forest over the Table 1 line features.
* :class:`StrudelCellClassifier` — Strudel-C, a multi-class random
  forest over the Table 2 cell features; runs Strudel-L first and
  feeds its per-line probability vectors in as features (Section 5.4).
* :class:`LineToCellBaseline` — the Line-C baseline, which "simply
  extends the predicted class of a line ... to each non-empty cell in
  this line".
* :class:`StrudelPipeline` — the end-to-end flow of Figure 2: dialect
  detection, parsing, cropping, line classification, cell
  classification.

Feature matrices are the hot path (Section 6.3.4: "most of the time
is spent on creating the feature vectors"), so the flow is organized
as a **single-pass plan**: each line feature matrix is extracted
exactly once per table and shared — :meth:`StrudelLineClassifier.infer`
returns a :class:`LineInference` carrying both the matrix and the
aligned class probabilities, and every downstream consumer (line
labels, the ``LineClassProbability`` cell features, cell prediction)
derives from that one object.  An optional
:class:`~repro.perf.cache.FeatureCache` memoizes matrices across
repeated analyses and cross-validation folds, and ``n_jobs`` fans
per-file extraction out over a worker pool without changing any
result (ordered, per-file-independent work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.cell_features import CellFeatureExtractor
from repro.core.line_features import LineFeatureExtractor
from repro.dialect.dialect import Dialect
from repro.errors import (
    ConfigurationError,
    InvalidParameterError,
    NotFittedError,
)
from repro.io.cropping import crop_table
from repro.io.ingest import (
    IngestPolicy,
    IngestReport,
    ingest_bytes,
    ingest_text,
)
from repro.core.profile import table_profile
from repro.obs import get_tracer
from repro.perf.cache import FeatureCache, array_hash
from repro.perf.parallel import parallel_map
from repro.types import (
    CLASS_TO_INDEX,
    CONTENT_CLASSES,
    INDEX_TO_CLASS,
    AnnotatedFile,
    CellClass,
    Table,
)

#: Forest size used by default.  The paper uses scikit-learn defaults
#: (100 trees); experiments may pass a smaller budget for speed.
DEFAULT_N_ESTIMATORS = 100

#: Constructor for the default per-classifier model, registered by the
#: composition root.  ``core`` may not import ``ml`` (layer rule
#: R002), so the top-level ``repro`` package — which Python always
#: initializes before any ``repro.*`` submodule — binds the random
#: forest here at import time via
#: :func:`set_default_classifier_factory`.
_default_classifier_factory: Callable[..., Any] | None = None


def set_default_classifier_factory(
    factory: Callable[..., Any]
) -> None:
    """Register the estimator constructor used when no explicit
    ``classifier_factory`` is passed to a Strudel classifier.

    The factory is called as ``factory(n_estimators=…,
    random_state=…, n_jobs=…)`` and must return an object with
    ``fit`` / ``predict_proba`` / ``classes_``.  Called by
    ``repro/__init__.py`` with the random forest; tests may rebind it
    to swap the backbone.
    """
    global _default_classifier_factory
    _default_classifier_factory = factory


def _default_classifier(
    n_estimators: int, random_state: int | None, n_jobs: int | None
) -> Any:
    if _default_classifier_factory is None:
        raise ConfigurationError(
            "no default classifier factory registered; import the "
            "'repro' package (which binds the random forest) or pass "
            "classifier_factory= explicitly"
        )
    return _default_classifier_factory(
        n_estimators=n_estimators, random_state=random_state,
        n_jobs=n_jobs,
    )


def align_class_probabilities(
    raw: np.ndarray, classes: np.ndarray, n_rows: int
) -> np.ndarray:
    """Spread a model's raw probability columns onto the canonical
    six-class axis.

    A model trained on data missing a rare class emits fewer columns
    than :data:`~repro.types.CONTENT_CLASSES`; absent classes get
    probability zero.  Shared by the line and cell classifiers so the
    alignment convention lives in exactly one place.
    """
    aligned = np.zeros((n_rows, len(CONTENT_CLASSES)))
    for column, klass in enumerate(classes):
        aligned[:, int(klass)] = raw[:, column]
    return aligned


#: Class objects on the canonical six-class axis, as an object array
#: so a whole argmax vector maps to labels in one ``take`` instead of
#: a Python loop (the loop showed up in the cell-prediction profile).
_CLASS_BY_INDEX = np.array(
    [INDEX_TO_CLASS[i] for i in range(len(CONTENT_CLASSES))],
    dtype=object,
)


def _labels_from(aligned: np.ndarray) -> list[CellClass]:
    """Most probable class per row of an aligned probability matrix."""
    return list(_CLASS_BY_INDEX.take(np.argmax(aligned, axis=1)))


def _apply_columns(
    features: np.ndarray, columns: np.ndarray
) -> np.ndarray:
    """Apply a fitted feature-subset selection.

    When the selection is the identity (no ``feature_subset``
    configured — the common case) the matrix is returned as-is: a
    fancy column slice would copy the whole matrix on every predict
    call for nothing.
    """
    if columns.size == features.shape[1] and np.array_equal(
        columns, np.arange(features.shape[1])
    ):
        return features
    return features[:, columns]


@dataclass
class LineInference:
    """One table's line-level inference, computed in a single pass.

    Attributes
    ----------
    features:
        The full ``(n_rows, n_features)`` line feature matrix (before
        any feature-subset column selection).
    probabilities:
        The aligned ``(n_rows, 6)`` class probability matrix derived
        from ``features``.
    """

    features: np.ndarray
    probabilities: np.ndarray


class StrudelLineClassifier:
    """Strudel-L: random-forest line classification.

    Parameters
    ----------
    extractor:
        Line feature extractor; defaults to the paper's Table 1 set.
    n_estimators, random_state:
        Forest configuration.
    feature_subset:
        Optional tuple of feature names to keep (feature-group
        ablations); ``None`` keeps all.
    n_jobs:
        Worker count for per-file feature extraction during ``fit``
        and for the default forest backbone; results are independent
        of the value (deterministic parallelism).
    """

    def __init__(
        self,
        extractor: LineFeatureExtractor | None = None,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        random_state: int | None = None,
        feature_subset: tuple[str, ...] | None = None,
        classifier_factory=None,
        n_jobs: int | None = 1,
    ):
        self.extractor = extractor or LineFeatureExtractor()
        self.n_estimators = n_estimators
        self.random_state = random_state
        self.feature_subset = feature_subset
        self.n_jobs = n_jobs
        self._classifier_factory = classifier_factory
        self._model = None
        self._columns: np.ndarray | None = None
        self._feature_cache: FeatureCache | None = None

    # ------------------------------------------------------------------
    def set_feature_cache(self, cache: FeatureCache | None) -> None:
        """Attach (or detach) a corpus-level feature cache."""
        self._feature_cache = cache

    def __getstate__(self) -> dict:
        """Pickle without the feature cache.

        The cache is a process-local resource (it holds a lock and is
        shared with sibling classifiers); shipping a classifier to a
        worker process broadcasts the *model*, never the cache.
        """
        state = self.__dict__.copy()
        state["_feature_cache"] = None
        return state

    def _make_model(self):
        if self._classifier_factory is not None:
            return self._classifier_factory()
        return _default_classifier(
            self.n_estimators, self.random_state, self.n_jobs
        )

    def _select_columns(self) -> np.ndarray:
        names = self.extractor.feature_names
        if self.feature_subset is None:
            return np.arange(len(names))
        index = {name: i for i, name in enumerate(names)}
        missing = [n for n in self.feature_subset if n not in index]
        if missing:
            raise InvalidParameterError(f"unknown line features: {missing}")
        return np.array([index[n] for n in self.feature_subset])

    # ------------------------------------------------------------------
    # Feature extraction (cached, fan-out capable)
    # ------------------------------------------------------------------
    def _extract(self, table: Table) -> np.ndarray:
        """The full line feature matrix for one table, via the cache.

        The cache stores pre-column-selection matrices so one entry
        serves every feature subset; ``_columns`` is applied by the
        consumers.
        """
        with get_tracer().span("line_features"):
            if self._feature_cache is None:
                return self.extractor.extract(table)
            key = FeatureCache.make_key(
                "line",
                self.extractor.cache_key,
                table_profile(table).content_hash,
            )
            (features,) = self._feature_cache.get_or_compute(
                key, lambda: (self.extractor.extract(table),)
            )
            return features

    def extract_features(
        self, tables: list[Table]
    ) -> list[np.ndarray]:
        """Per-table full feature matrices, fanned out over ``n_jobs``.

        Output order matches input order regardless of the worker
        count, so training data assembly stays deterministic.
        """
        return parallel_map(self._extract, tables, n_jobs=self.n_jobs)

    # ------------------------------------------------------------------
    def fit(
        self,
        files: list[AnnotatedFile],
        features: list[np.ndarray] | None = None,
    ) -> "StrudelLineClassifier":
        """Train on the non-empty lines of ``files``.

        ``features`` may carry the per-file matrices from
        :meth:`extract_features` when the caller already has them (the
        cell classifier shares one extraction pass between the line
        fit and its probability features).
        """
        self._columns = self._select_columns()
        if features is None:
            features = self.extract_features(
                [annotated.table for annotated in files]
            )
        matrices: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for annotated, matrix in zip(files, features):
            indices = annotated.non_empty_line_indices()
            if not indices:
                continue
            matrices.append(matrix[indices])
            labels.append(
                np.array(
                    [
                        CLASS_TO_INDEX[annotated.line_labels[i]]
                        for i in indices
                    ]
                )
            )
        X = np.vstack(matrices)[:, self._columns]
        y = np.concatenate(labels)
        self._model = self._make_model().fit(X, y)
        return self

    def _require_fitted(self) -> None:
        if self._model is None:
            raise NotFittedError("StrudelLineClassifier must be fitted first")

    # ------------------------------------------------------------------
    def predict_proba_from_features(
        self, features: np.ndarray
    ) -> np.ndarray:
        """Aligned ``(n_rows, 6)`` probabilities from a pre-extracted
        full feature matrix (no re-extraction)."""
        self._require_fitted()
        with get_tracer().span("line_prediction"):
            raw = self._model.predict_proba(
                _apply_columns(features, self._columns)
            )
            return align_class_probabilities(
                raw, self._model.classes_, features.shape[0]
            )

    def infer(self, table: Table) -> LineInference:
        """Extract the feature matrix once and derive the aligned
        probabilities from it — the single-pass entry point shared by
        every consumer of line-level inference."""
        self._require_fitted()
        features = self._extract(table)
        return LineInference(
            features=features,
            probabilities=self.predict_proba_from_features(features),
        )

    def predict_proba(self, table: Table) -> np.ndarray:
        """``(n_rows, 6)`` class probability matrix over all lines.

        Probabilities are produced for every line (including empty
        ones, whose rows are only consumed as features downstream);
        columns follow :data:`~repro.types.CONTENT_CLASSES` order.
        """
        return self.infer(table).probabilities

    def predict(
        self, table: Table, inference: LineInference | None = None
    ) -> list[CellClass]:
        """Predicted class per line; empty lines get ``CellClass.EMPTY``.

        Passing an existing :class:`LineInference` skips extraction
        entirely.
        """
        if inference is None:
            inference = self.infer(table)
        proba = inference.probabilities
        labels = _labels_from(proba)
        return [
            CellClass.EMPTY if table.is_empty_row(i) else labels[i]
            for i in range(table.n_rows)
        ]


class StrudelCellClassifier:
    """Strudel-C: random-forest cell classification on Table 2 features.

    Owns (or shares) a :class:`StrudelLineClassifier`, which is fitted
    first so its probability vectors become cell features.
    """

    def __init__(
        self,
        line_classifier: StrudelLineClassifier | None = None,
        extractor: CellFeatureExtractor | None = None,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        random_state: int | None = None,
        feature_subset: tuple[str, ...] | None = None,
        classifier_factory=None,
        n_jobs: int | None = 1,
    ):
        self.line_classifier = line_classifier or StrudelLineClassifier(
            n_estimators=n_estimators, random_state=random_state,
            n_jobs=n_jobs,
        )
        self.extractor = extractor or CellFeatureExtractor()
        self.n_estimators = n_estimators
        self.random_state = random_state
        self.feature_subset = feature_subset
        self.n_jobs = n_jobs
        self._classifier_factory = classifier_factory
        self._model = None
        self._columns: np.ndarray | None = None
        self._line_fitted_here = False
        self._feature_cache: FeatureCache | None = None

    # ------------------------------------------------------------------
    def set_feature_cache(self, cache: FeatureCache | None) -> None:
        """Attach a feature cache to this classifier and its Strudel-L."""
        self._feature_cache = cache
        self.line_classifier.set_feature_cache(cache)

    def __getstate__(self) -> dict:
        """Pickle without the feature cache (see Strudel-L)."""
        state = self.__dict__.copy()
        state["_feature_cache"] = None
        return state

    def _make_model(self):
        if self._classifier_factory is not None:
            return self._classifier_factory()
        return _default_classifier(
            self.n_estimators, self.random_state, self.n_jobs
        )

    def _select_columns(self) -> np.ndarray:
        names = self.extractor.feature_names
        if self.feature_subset is None:
            return np.arange(len(names))
        index = {name: i for i, name in enumerate(names)}
        missing = [n for n in self.feature_subset if n not in index]
        if missing:
            raise InvalidParameterError(f"unknown cell features: {missing}")
        return np.array([index[n] for n in self.feature_subset])

    # ------------------------------------------------------------------
    def _extract_cells(
        self, table: Table, probabilities: np.ndarray
    ) -> tuple[list[tuple[int, int]], np.ndarray]:
        """Positions and full cell feature matrix, via the cache.

        Cell features depend on the upstream line probabilities, so
        the cache key includes their hash — two different line models
        can never share an entry.
        """
        with get_tracer().span("cell_features"):
            if self._feature_cache is None:
                return self.extractor.extract(table, probabilities)
            key = FeatureCache.make_key(
                "cell",
                self.extractor.cache_key,
                table_profile(table).content_hash,
                array_hash(probabilities),
            )
            positions_array, features = (
                self._feature_cache.get_or_compute(
                    key,
                    lambda: self._pack_extraction(table, probabilities),
                )
            )
            positions = [(int(i), int(j)) for i, j in positions_array]
            return positions, features

    def extract_cells(
        self, table: Table, probabilities: np.ndarray
    ) -> tuple[list[tuple[int, int]], np.ndarray]:
        """Public face of the cell feature pass: positions and the
        full feature matrix for every non-empty cell.

        Callers that want to time or batch prediction separately from
        extraction (the benchmark's throughput probes, the future
        serving path) pair this with :meth:`predict_from_features`.
        """
        return self._extract_cells(table, probabilities)

    def _pack_extraction(
        self, table: Table, probabilities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        positions, features = self.extractor.extract(table, probabilities)
        packed = (
            np.array(positions, dtype=np.int64)
            if positions
            else np.zeros((0, 2), dtype=np.int64)
        )
        return packed, features

    # ------------------------------------------------------------------
    def fit(self, files: list[AnnotatedFile]) -> "StrudelCellClassifier":
        """Train on the non-empty cells of ``files``.

        Fits the line classifier on the same files first (unless the
        caller passed one that is already fitted), then uses its
        probabilities as the ``LineClassProbability`` features.  The
        line feature matrices are extracted exactly once and shared
        between the line fit and the probability computation.
        """
        line_features = self.line_classifier.extract_features(
            [annotated.table for annotated in files]
        )
        if self.line_classifier._model is None:
            self.line_classifier.fit(files, features=line_features)
            self._line_fitted_here = True
        self._columns = self._select_columns()

        matrices: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for annotated, matrix in zip(files, line_features):
            probabilities = (
                self.line_classifier.predict_proba_from_features(matrix)
            )
            positions, features = self._extract_cells(
                annotated.table, probabilities
            )
            if not positions:
                continue
            matrices.append(features)
            labels.append(
                np.array(
                    [
                        CLASS_TO_INDEX[annotated.cell_labels[i][j]]
                        for i, j in positions
                    ]
                )
            )
        X = np.vstack(matrices)[:, self._columns]
        y = np.concatenate(labels)
        self._model = self._make_model().fit(X, y)
        return self

    def _require_fitted(self) -> None:
        if self._model is None:
            raise NotFittedError("StrudelCellClassifier must be fitted first")

    # ------------------------------------------------------------------
    def predict_from_features(
        self,
        positions: list[tuple[int, int]],
        features: np.ndarray,
    ) -> tuple[list[tuple[int, int]], list[CellClass]]:
        """Predicted classes for pre-extracted cell features."""
        self._require_fitted()
        with get_tracer().span("cell_prediction"):
            if not positions:
                return [], []
            raw = self._model.predict_proba(
                _apply_columns(features, self._columns)
            )
            aligned = align_class_probabilities(
                raw, self._model.classes_, features.shape[0]
            )
            return positions, _labels_from(aligned)

    def predict_with_positions(
        self,
        table: Table,
        line_inference: LineInference | None = None,
    ) -> tuple[list[tuple[int, int]], list[CellClass]]:
        """Positions and predicted classes of all non-empty cells.

        ``line_inference`` carries an already-computed line pass (see
        :meth:`StrudelLineClassifier.infer`); when omitted, one is
        computed here — either way line features are extracted at most
        once.
        """
        self._require_fitted()
        if line_inference is None:
            probabilities = self.line_classifier.predict_proba(table)
        else:
            probabilities = line_inference.probabilities
        positions, features = self._extract_cells(table, probabilities)
        return self.predict_from_features(positions, features)

    def predict(
        self,
        table: Table,
        line_inference: LineInference | None = None,
    ) -> dict[tuple[int, int], CellClass]:
        """Mapping from non-empty cell positions to predicted classes."""
        positions, labels = self.predict_with_positions(
            table, line_inference=line_inference
        )
        return dict(zip(positions, labels))


class LineToCellBaseline:
    """Line-C: extend each line's predicted class to its non-empty cells."""

    def __init__(self, line_classifier: StrudelLineClassifier):
        self.line_classifier = line_classifier

    def fit(self, files: list[AnnotatedFile]) -> "LineToCellBaseline":
        """Fit the underlying line classifier if necessary."""
        if self.line_classifier._model is None:
            self.line_classifier.fit(files)
        return self

    def predict_with_positions(
        self, table: Table
    ) -> tuple[list[tuple[int, int]], list[CellClass]]:
        """Positions and classes of all non-empty cells."""
        line_labels = self.line_classifier.predict(table)
        positions: list[tuple[int, int]] = []
        labels: list[CellClass] = []
        for cell in table.non_empty_cells():
            positions.append((cell.row, cell.col))
            labels.append(line_labels[cell.row])
        return positions, labels

    def predict(self, table: Table) -> dict[tuple[int, int], CellClass]:
        """Mapping from non-empty cell positions to predicted classes."""
        positions, labels = self.predict_with_positions(table)
        return dict(zip(positions, labels))


@dataclass
class StructureResult:
    """Output of the end-to-end pipeline for one input text.

    ``ingest`` carries the ingestion stage's repair report when the
    result came from :meth:`StrudelPipeline.analyze` (``None`` for
    :meth:`~StrudelPipeline.analyze_table`, which skips ingestion).
    """

    dialect: Dialect
    table: Table
    line_classes: list[CellClass]
    cell_classes: dict[tuple[int, int], CellClass]
    ingest: IngestReport | None = None


class StrudelPipeline:
    """The full Figure 2 flow: text in, classified structure out.

    The pipeline owns one Strudel-L and one Strudel-C model; call
    :meth:`fit` with annotated files, then :meth:`analyze` with raw
    CSV text (dialect is detected automatically) or :meth:`analyze_table`
    with an already-parsed table.

    Parameters
    ----------
    n_estimators, random_state, crop:
        Model size, seed, and whether to crop parsed tables.
    n_jobs:
        Worker count threaded through feature extraction and the
        forest backbone; never changes predictions.
    feature_cache:
        Optional :class:`~repro.perf.cache.FeatureCache` shared by
        both classifiers, so repeated analyses of the same content
        skip extraction.
    """

    def __init__(
        self,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        random_state: int | None = None,
        crop: bool = True,
        n_jobs: int | None = 1,
        feature_cache: FeatureCache | None = None,
    ):
        self.line_classifier = StrudelLineClassifier(
            n_estimators=n_estimators, random_state=random_state,
            n_jobs=n_jobs,
        )
        self.cell_classifier = StrudelCellClassifier(
            line_classifier=self.line_classifier,
            n_estimators=n_estimators,
            random_state=random_state,
            n_jobs=n_jobs,
        )
        self.crop = crop
        self.n_jobs = n_jobs
        if feature_cache is not None:
            self.set_feature_cache(feature_cache)

    def set_feature_cache(self, cache: FeatureCache | None) -> None:
        """Attach a feature cache to both classifiers."""
        self.cell_classifier.set_feature_cache(cache)

    def fit(self, files: list[AnnotatedFile]) -> "StrudelPipeline":
        """Train both classifiers on annotated files."""
        with get_tracer().span("fit", n_files=len(files)):
            self.cell_classifier.fit(files)
        return self

    def _classify(self, table: Table) -> tuple[
        list[CellClass], dict[tuple[int, int], CellClass]
    ]:
        """One shared line pass feeding both output granularities."""
        inference = self.line_classifier.infer(table)
        line_classes = self.line_classifier.predict(
            table, inference=inference
        )
        cell_classes = self.cell_classifier.predict(
            table, line_inference=inference
        )
        return line_classes, cell_classes

    def analyze(
        self,
        text: str,
        dialect: Dialect | None = None,
        policy: IngestPolicy | None = None,
    ) -> StructureResult:
        """Classify the structure of raw CSV ``text``.

        The text is routed through the hardened ingestion stage
        (:mod:`repro.io.ingest`), so a stray byte-order mark or NUL
        never reaches dialect detection or feature extraction; the
        stage's report rides along on the result.
        """
        with get_tracer().span("analyze"):
            ingested = ingest_text(
                text, dialect=dialect, policy=policy or IngestPolicy()
            )
            return self._structure_from(ingested)

    def analyze_bytes(
        self,
        data: bytes,
        dialect: Dialect | None = None,
        policy: IngestPolicy | None = None,
    ) -> StructureResult:
        """Classify the structure of raw CSV ``data`` (undecoded bytes).

        Identical to :meth:`analyze` but entering the hardened
        ingestion stage one step earlier, at encoding resolution — the
        path the corpus engine's workers take for files read straight
        from disk.
        """
        with get_tracer().span("analyze"):
            ingested = ingest_bytes(
                data, dialect=dialect, policy=policy or IngestPolicy()
            )
            return self._structure_from(ingested)

    def _structure_from(self, ingested) -> StructureResult:
        """Shared tail of the ``analyze*`` entry points."""
        table = ingested.table
        if self.crop:
            table = crop_table(table)
        line_classes, cell_classes = self._classify(table)
        return StructureResult(
            dialect=ingested.dialect,
            table=table,
            line_classes=line_classes,
            cell_classes=cell_classes,
            ingest=ingested.report,
        )

    def analyze_table(self, table: Table) -> StructureResult:
        """Classify the structure of an already-parsed table."""
        line_classes, cell_classes = self._classify(table)
        return StructureResult(
            dialect=Dialect.standard(),
            table=table,
            line_classes=line_classes,
            cell_classes=cell_classes,
        )
