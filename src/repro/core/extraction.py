"""Relational table extraction from classified structure.

Structure detection is "an important preliminary task for extracting
information" (the paper's framing): once every line is classified,
the relational tables buried in a verbose CSV file can be pulled out
mechanically.  This module performs that final step:

* the file is segmented into *table regions* — maximal vertical spans
  of header/group/data/derived lines (tables are stacked vertically,
  per the paper's layout constraints);
* each region yields an :class:`ExtractedTable`: column names from
  its header lines, data rows with their group context resolved
  (group lines and leading group cells become a ``group`` attribute),
  derived lines dropped or kept on request;
* surrounding metadata and notes lines are attached as provenance.

The result is machine-readable in the paper's sense: every extracted
table is a rectangular relation with a header and homogeneous rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.strudel import StructureResult
from repro.types import CellClass, Table

#: Line classes that belong to a table region.
_REGION_CLASSES = frozenset(
    {CellClass.HEADER, CellClass.GROUP, CellClass.DATA, CellClass.DERIVED}
)


@dataclass
class ExtractedRow:
    """One relational tuple with its group context."""

    values: list[str]
    group: str | None
    source_line: int
    is_derived: bool = False


@dataclass
class ExtractedTable:
    """A relational table recovered from one region of a verbose file."""

    columns: list[str]
    rows: list[ExtractedRow] = field(default_factory=list)
    metadata: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    first_line: int = 0
    last_line: int = 0

    @property
    def n_rows(self) -> int:
        """Number of extracted data tuples."""
        return len(self.rows)

    def to_grid(self, include_group_column: bool = True) -> list[list[str]]:
        """The relation as a list of rows, header first.

        With ``include_group_column`` a leading ``group`` column holds
        each tuple's resolved group context.
        """
        if include_group_column:
            header = ["group"] + self.columns
            body = [
                [row.group or ""] + row.values for row in self.rows
            ]
        else:
            header = list(self.columns)
            body = [list(row.values) for row in self.rows]
        return [header] + body


def _segment_regions(
    line_classes: list[CellClass],
) -> list[tuple[int, int]]:
    """Maximal spans of table-region lines, bridging empty separators.

    Empty lines *inside* a region (e.g. between header and data, or
    between table fractions) do not split it; a metadata or notes line
    does.
    """
    regions: list[tuple[int, int]] = []
    start: int | None = None
    last_region_line: int | None = None
    for i, klass in enumerate(line_classes):
        if klass in _REGION_CLASSES:
            if start is None:
                start = i
            last_region_line = i
        elif klass is not CellClass.EMPTY and start is not None:
            regions.append((start, last_region_line))
            start = None
    if start is not None:
        regions.append((start, last_region_line))
    return regions


def _header_names(
    table: Table, header_lines: list[int], width: int
) -> list[str]:
    """Column names from the region's header lines.

    Multiple header lines are joined top-down per column; columns with
    no header text get positional names (``column_3``) so the relation
    always has a complete header — the paper notes real tables often
    leave the key column unlabelled.
    """
    names: list[str] = []
    for j in range(width):
        parts = [
            table.cell(i, j).strip()
            for i in header_lines
            if table.cell(i, j).strip()
        ]
        names.append(" ".join(parts) if parts else f"column_{j}")
    return names


def _line_group_label(
    table: Table, i: int, cell_classes: dict[tuple[int, int], CellClass]
) -> str | None:
    """The group text carried *inside* line ``i``, if any."""
    labels = [
        table.cell(i, j).strip()
        for j in range(table.n_cols)
        if cell_classes.get((i, j)) is CellClass.GROUP
    ]
    return " ".join(labels) if labels else None


def extract_tables(
    result: StructureResult,
    keep_derived: bool = False,
) -> list[ExtractedTable]:
    """Extract every relational table from a classified file.

    Parameters
    ----------
    result:
        Output of :meth:`StrudelPipeline.analyze` (or
        ``analyze_table``).
    keep_derived:
        Whether derived (aggregate) lines become rows (flagged
        ``is_derived``) or are dropped — dropping is the right choice
        when loading into a database, since aggregates are recomputable.
    """
    table = result.table
    line_classes = result.line_classes
    regions = _segment_regions(line_classes)

    extracted: list[ExtractedTable] = []
    for index, (start, stop) in enumerate(regions):
        lines = list(range(start, stop + 1))
        header_lines = [
            i for i in lines if line_classes[i] is CellClass.HEADER
        ]
        columns = _header_names(table, header_lines, table.n_cols)

        current_group: str | None = None
        rows: list[ExtractedRow] = []
        for i in lines:
            klass = line_classes[i]
            if klass is CellClass.GROUP:
                non_empty = [v for v in table.row(i) if v.strip()]
                current_group = " ".join(non_empty) or current_group
                continue
            if klass is CellClass.DATA or (
                keep_derived and klass is CellClass.DERIVED
            ):
                inline_group = _line_group_label(
                    table, i, result.cell_classes
                )
                rows.append(
                    ExtractedRow(
                        values=table.row(i),
                        group=inline_group or current_group,
                        source_line=i,
                        is_derived=klass is CellClass.DERIVED,
                    )
                )
        metadata = _context_lines(
            table, line_classes, regions, index, CellClass.METADATA
        )
        notes = _context_lines(
            table, line_classes, regions, index, CellClass.NOTES
        )
        extracted.append(
            ExtractedTable(
                columns=columns,
                rows=rows,
                metadata=metadata,
                notes=notes,
                first_line=start,
                last_line=stop,
            )
        )
    return extracted


def _context_lines(
    table: Table,
    line_classes: list[CellClass],
    regions: list[tuple[int, int]],
    index: int,
    klass: CellClass,
) -> list[str]:
    """Metadata above / notes below the region, as joined line texts.

    Metadata lines between the previous region and this one belong to
    this table; notes between this region and the next belong to this
    one — matching the class definitions (metadata precedes, notes
    follow).
    """
    start, stop = regions[index]
    if klass is CellClass.METADATA:
        lower = regions[index - 1][1] + 1 if index > 0 else 0
        upper = start
    else:
        lower = stop + 1
        upper = (
            regions[index + 1][0]
            if index + 1 < len(regions)
            else table.n_rows
        )
    texts: list[str] = []
    for i in range(lower, upper):
        if line_classes[i] is klass:
            non_empty = [v.strip() for v in table.row(i) if v.strip()]
            texts.append(" ".join(non_empty))
    return texts
