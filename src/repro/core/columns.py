"""Column classification — the paper's future-work extension (iii).

The conclusions ask "whether column classification can help boost the
classification quality".  This module implements the natural first
take on that question:

* :class:`ColumnClassifier` aggregates Strudel-C cell predictions into
  one class per column (majority over non-empty cells);
* :func:`refine_cell_predictions` feeds column majorities back into
  the cell predictions, targeting the one confusion the paper singles
  out — *derived columns* whose cells sit in otherwise-data lines and
  get voted down by line-oriented features.
"""

from __future__ import annotations

from collections import Counter

from repro.core.strudel import StrudelCellClassifier
from repro.types import CellClass, Table


class ColumnClassifier:
    """Majority-vote column classes on top of a cell classifier.

    Parameters
    ----------
    cell_classifier:
        A fitted (or to-be-fitted) :class:`StrudelCellClassifier`.
    """

    def __init__(self, cell_classifier: StrudelCellClassifier):
        self.cell_classifier = cell_classifier

    def fit(self, files) -> "ColumnClassifier":
        """Fit the underlying cell classifier if necessary."""
        if self.cell_classifier._model is None:
            self.cell_classifier.fit(files)
        return self

    def predict(self, table: Table) -> list[CellClass]:
        """One class per column: the majority over its non-empty cells.

        Fully empty columns yield ``CellClass.EMPTY``.  Ties break
        toward the rarer class among the tied candidates (consistent
        with the evaluation protocol's tie-breaking).
        """
        cells = self.cell_classifier.predict(table)
        per_column: list[Counter] = [
            Counter() for _ in range(table.n_cols)
        ]
        for (_, j), klass in cells.items():
            per_column[j][klass] += 1
        overall = Counter(cells.values())
        labels: list[CellClass] = []
        for counts in per_column:
            if not counts:
                labels.append(CellClass.EMPTY)
                continue
            best = max(
                counts.items(),
                key=lambda kv: (kv[1], -overall[kv[0]]),
            )
            labels.append(best[0])
        return labels


def refine_cell_predictions(
    predictions: dict[tuple[int, int], CellClass],
    table: Table,
    dominance: float = 0.7,
) -> dict[tuple[int, int], CellClass]:
    """Snap data/derived confusions to their column's dominant class.

    For every column in which the ``derived`` class holds at least
    ``dominance`` of the non-empty cells, remaining ``data`` cells in
    that column are relabelled ``derived``.  The snap is deliberately
    one-directional: derived *columns* are the rare, high-precision
    signal the paper identifies (row-sum columns whose cells sit in
    otherwise-data lines), whereas almost every numeric column is
    data-dominant — snapping toward data would erase the scattered
    derived predictions wholesale.

    Returns a new mapping; the input is not modified.
    """
    column_counts: dict[int, Counter] = {}
    for (_, j), klass in predictions.items():
        column_counts.setdefault(j, Counter())[klass] += 1

    derived_columns = {
        j
        for j, counts in column_counts.items()
        if counts.get(CellClass.DERIVED, 0) / sum(counts.values())
        >= dominance
    }

    refined = dict(predictions)
    for (i, j), klass in predictions.items():
        if j in derived_columns and klass is CellClass.DATA:
            refined[(i, j)] = CellClass.DERIVED
    return refined
