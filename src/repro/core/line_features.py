"""The Strudel-L line feature set (Table 1 of the paper).

Eleven logical features in three groups; the three contextual features
are applied twice (once toward the closest non-empty line above, once
below), giving 14 feature columns:

========================  ============================================
Content                   EmptyCellRatio, DiscountedCumulativeGain,
                          AggregationWord, WordAmount,
                          NumericalCellRatio, StringCellRatio,
                          LinePosition
Contextual (above/below)  DataTypeMatching, EmptyNeighboringLines,
                          CellLengthDifference
Computational             DerivedCoverage
========================  ============================================

Conventions at file boundaries (documented here because the paper
leaves them implicit):

* a line with no non-empty neighbour in a direction scores 0.0 on
  ``DataTypeMatching`` and 1.0 on ``CellLengthDifference`` (nothing to
  match; maximally different);
* ``EmptyNeighboringLines`` counts positions beyond the file as empty,
  with a fixed denominator of five.

The extractor can optionally append the paper's rejected *global*
features (file-level emptiness, width, length, empty-block count) for
the ablation experiment that reproduces the finding of "no positive
impact".
"""

from __future__ import annotations

import numpy as np

from repro.core.datatypes import infer_data_type, is_numeric_type
from repro.core.derived import DerivedDetector
from repro.core.keywords import line_contains_aggregation_keyword
from repro.types import DataType, Table
from repro.util.stats import (
    bhattacharyya_distance,
    discounted_cumulative_gain,
    histogram,
    min_max_normalize,
)
from repro.util.text import count_words

#: Histogram geometry for ``CellLengthDifference``.
_LENGTH_BINS = 10
_LENGTH_RANGE = (0.0, 50.0)

#: Window size for ``EmptyNeighboringLines``.
_NEIGHBOR_WINDOW = 5

LINE_FEATURE_NAMES: tuple[str, ...] = (
    "empty_cell_ratio",
    "discounted_cumulative_gain",
    "aggregation_word",
    "word_amount",
    "numerical_cell_ratio",
    "string_cell_ratio",
    "line_position",
    "data_type_matching_above",
    "data_type_matching_below",
    "empty_neighboring_lines_above",
    "empty_neighboring_lines_below",
    "cell_length_difference_above",
    "cell_length_difference_below",
    "derived_coverage",
)

GLOBAL_FEATURE_NAMES: tuple[str, ...] = (
    "global_empty_line_ratio",
    "global_file_width",
    "global_file_length",
    "global_empty_block_count",
)

#: Feature-group partition used by the feature-group ablation.
LINE_FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "content": LINE_FEATURE_NAMES[:7],
    "contextual": LINE_FEATURE_NAMES[7:13],
    "computational": LINE_FEATURE_NAMES[13:14],
}


class LineFeatureExtractor:
    """Computes the Table 1 feature matrix for every line of a table.

    Parameters
    ----------
    detector:
        The derived cell detector backing ``DerivedCoverage``;
        defaults to the paper's configuration (``d=0.1``, ``c=0.5``).
    include_global_features:
        Append the four rejected global features (ablation only).
    """

    def __init__(
        self,
        detector: DerivedDetector | None = None,
        include_global_features: bool = False,
    ):
        self.detector = detector or DerivedDetector()
        self.include_global_features = include_global_features

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Column names of the matrix produced by :meth:`extract`."""
        if self.include_global_features:
            return LINE_FEATURE_NAMES + GLOBAL_FEATURE_NAMES
        return LINE_FEATURE_NAMES

    @property
    def cache_key(self) -> str:
        """Stable configuration key for corpus-level feature caches.

        Covers everything :meth:`extract` depends on besides the table
        itself; see :mod:`repro.perf.cache`.
        """
        return (
            f"line-v1(global={int(self.include_global_features)},"
            f"{self.detector.cache_key})"
        )

    # ------------------------------------------------------------------
    def extract(self, table: Table) -> np.ndarray:
        """Feature matrix of shape ``(n_rows, n_features)``.

        Rows are produced for *every* line, including empty ones, so
        callers can index by the original line number; the classifiers
        select only non-empty lines.
        """
        n_rows, n_cols = table.shape
        rows = list(table.rows())
        types = [
            [infer_data_type(value) for value in row] for row in rows
        ]
        empty_line = [table.is_empty_row(i) for i in range(n_rows)]
        derived_cells = self.detector.detect(table)

        word_counts = [
            float(sum(count_words(value) for value in row)) for row in rows
        ]
        word_normalized = min_max_normalize(word_counts)

        above = self._closest_non_empty(empty_line, direction=-1)
        below = self._closest_non_empty(empty_line, direction=+1)

        features = np.zeros((n_rows, len(self.feature_names)))
        for i in range(n_rows):
            features[i, :14] = self._line_features(
                i, rows, types, empty_line, derived_cells,
                word_normalized[i], above[i], below[i], n_rows, n_cols,
            )
        if self.include_global_features:
            features[:, 14:] = self._global_features(empty_line, n_rows,
                                                     n_cols)
        return features

    # ------------------------------------------------------------------
    def _line_features(
        self,
        i: int,
        rows: list[list[str]],
        types: list[list[DataType]],
        empty_line: list[bool],
        derived_cells: set[tuple[int, int]],
        word_amount: float,
        above: int | None,
        below: int | None,
        n_rows: int,
        n_cols: int,
    ) -> np.ndarray:
        row = rows[i]
        row_types = types[i]
        non_empty = [j for j, t in enumerate(row_types)
                     if t is not DataType.EMPTY]
        n_non_empty = len(non_empty)

        empty_ratio = 1.0 - n_non_empty / n_cols if n_cols else 1.0
        dcg = discounted_cumulative_gain(
            [0.0 if t is DataType.EMPTY else 1.0 for t in row_types]
        )
        aggregation = 1.0 if line_contains_aggregation_keyword(row) else 0.0
        numeric = sum(
            1 for j in non_empty if is_numeric_type(row_types[j])
        )
        strings = sum(
            1 for j in non_empty if row_types[j] is DataType.STRING
        )
        numeric_ratio = numeric / n_non_empty if n_non_empty else 0.0
        string_ratio = strings / n_non_empty if n_non_empty else 0.0
        position = i / (n_rows - 1) if n_rows > 1 else 0.0

        matching_above = self._data_type_matching(row_types, types, above)
        matching_below = self._data_type_matching(row_types, types, below)
        empties_above = self._empty_neighbor_ratio(empty_line, i, -1)
        empties_below = self._empty_neighbor_ratio(empty_line, i, +1)
        length_above = self._cell_length_difference(row, rows, above)
        length_below = self._cell_length_difference(row, rows, below)

        derived_in_line = sum(
            1
            for j in non_empty
            if is_numeric_type(row_types[j]) and (i, j) in derived_cells
        )
        derived_coverage = derived_in_line / numeric if numeric else 0.0

        return np.array([
            empty_ratio, dcg, aggregation, word_amount, numeric_ratio,
            string_ratio, position, matching_above, matching_below,
            empties_above, empties_below, length_above, length_below,
            derived_coverage,
        ])

    # ------------------------------------------------------------------
    @staticmethod
    def _closest_non_empty(
        empty_line: list[bool], direction: int
    ) -> list[int | None]:
        """For each line, the index of the closest non-empty line in
        ``direction`` (-1 above, +1 below), or ``None`` at the boundary."""
        n = len(empty_line)
        result: list[int | None] = [None] * n
        last: int | None = None
        order = range(n) if direction < 0 else range(n - 1, -1, -1)
        for i in order:
            result[i] = last
            if not empty_line[i]:
                last = i
        return result

    @staticmethod
    def _data_type_matching(
        row_types: list[DataType],
        types: list[list[DataType]],
        neighbour: int | None,
    ) -> float:
        if neighbour is None:
            return 0.0
        other = types[neighbour]
        matches = sum(1 for a, b in zip(row_types, other) if a == b)
        return matches / len(row_types) if row_types else 0.0

    @staticmethod
    def _empty_neighbor_ratio(
        empty_line: list[bool], i: int, direction: int
    ) -> float:
        """Share of empty lines among the five lines above/below;
        positions beyond the file count as empty."""
        empties = 0
        for step in range(1, _NEIGHBOR_WINDOW + 1):
            j = i + direction * step
            if j < 0 or j >= len(empty_line) or empty_line[j]:
                empties += 1
        return empties / _NEIGHBOR_WINDOW

    @staticmethod
    def _cell_length_difference(
        row: list[str], rows: list[list[str]], neighbour: int | None
    ) -> float:
        if neighbour is None:
            return 1.0
        lengths_here = [float(len(v.strip())) for v in row if v.strip()]
        lengths_there = [
            float(len(v.strip())) for v in rows[neighbour] if v.strip()
        ]
        hist_here = histogram(lengths_here, _LENGTH_BINS, *_LENGTH_RANGE)
        hist_there = histogram(lengths_there, _LENGTH_BINS, *_LENGTH_RANGE)
        return bhattacharyya_distance(hist_here, hist_there)

    # ------------------------------------------------------------------
    @staticmethod
    def _global_features(
        empty_line: list[bool], n_rows: int, n_cols: int
    ) -> np.ndarray:
        """The paper's rejected file-level features (ablation S2)."""
        empty_ratio = sum(empty_line) / n_rows if n_rows else 0.0
        # Width and length squashed to [0, 1] with a soft saturation.
        width = n_cols / (n_cols + 25.0)
        length = n_rows / (n_rows + 100.0)
        blocks = 0
        previous = False
        for is_empty in empty_line:
            if is_empty and not previous:
                blocks += 1
            previous = is_empty
        block_count = blocks / (blocks + 5.0)
        return np.array([empty_ratio, width, length, block_count])
