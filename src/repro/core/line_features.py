"""The Strudel-L line feature set (Table 1 of the paper).

Eleven logical features in three groups; the three contextual features
are applied twice (once toward the closest non-empty line above, once
below), giving 14 feature columns:

========================  ============================================
Content                   EmptyCellRatio, DiscountedCumulativeGain,
                          AggregationWord, WordAmount,
                          NumericalCellRatio, StringCellRatio,
                          LinePosition
Contextual (above/below)  DataTypeMatching, EmptyNeighboringLines,
                          CellLengthDifference
Computational             DerivedCoverage
========================  ============================================

Conventions at file boundaries (documented here because the paper
leaves them implicit):

* a line with no non-empty neighbour in a direction scores 0.0 on
  ``DataTypeMatching`` and 1.0 on ``CellLengthDifference`` (nothing to
  match; maximally different);
* ``EmptyNeighboringLines`` counts positions beyond the file as empty,
  with a fixed denominator of five.

The extractor can optionally append the paper's rejected *global*
features (file-level emptiness, width, length, empty-block count) for
the ablation experiment that reproduces the finding of "no positive
impact".

The whole matrix is computed from the columnar
:class:`~repro.core.profile.TableProfile` — per-cell data types,
stripped lengths, word counts and keyword flags are classified once
per file (once per *distinct* value, in fact) and every feature below
is a vectorized reduction over those arrays.  Where a reference
formula sums floating-point terms sequentially, the vectorized code
uses ``np.cumsum`` (a sequential accumulation) rather than ``np.sum``
(pairwise), so the output stays byte-identical to the original
per-line implementation, which ``tests/test_profile_parity.py``
enforces against a retained legacy reference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.derived import DerivedDetector
from repro.core.profile import TableProfile, table_profile
from repro.types import Table

#: Histogram geometry for ``CellLengthDifference``.
_LENGTH_BINS = 10
_LENGTH_RANGE = (0.0, 50.0)

#: Window size for ``EmptyNeighboringLines``.
_NEIGHBOR_WINDOW = 5

LINE_FEATURE_NAMES: tuple[str, ...] = (
    "empty_cell_ratio",
    "discounted_cumulative_gain",
    "aggregation_word",
    "word_amount",
    "numerical_cell_ratio",
    "string_cell_ratio",
    "line_position",
    "data_type_matching_above",
    "data_type_matching_below",
    "empty_neighboring_lines_above",
    "empty_neighboring_lines_below",
    "cell_length_difference_above",
    "cell_length_difference_below",
    "derived_coverage",
)

GLOBAL_FEATURE_NAMES: tuple[str, ...] = (
    "global_empty_line_ratio",
    "global_file_width",
    "global_file_length",
    "global_empty_block_count",
)

#: Feature-group partition used by the feature-group ablation.
LINE_FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "content": LINE_FEATURE_NAMES[:7],
    "contextual": LINE_FEATURE_NAMES[7:13],
    "computational": LINE_FEATURE_NAMES[13:14],
}


class LineFeatureExtractor:
    """Computes the Table 1 feature matrix for every line of a table.

    Parameters
    ----------
    detector:
        The derived cell detector backing ``DerivedCoverage``;
        defaults to the paper's configuration (``d=0.1``, ``c=0.5``).
    include_global_features:
        Append the four rejected global features (ablation only).
    """

    def __init__(
        self,
        detector: DerivedDetector | None = None,
        include_global_features: bool = False,
    ):
        self.detector = detector or DerivedDetector()
        self.include_global_features = include_global_features

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Column names of the matrix produced by :meth:`extract`."""
        if self.include_global_features:
            return LINE_FEATURE_NAMES + GLOBAL_FEATURE_NAMES
        return LINE_FEATURE_NAMES

    @property
    def cache_key(self) -> str:
        """Stable configuration key for corpus-level feature caches.

        Covers everything :meth:`extract` depends on besides the table
        itself; see :mod:`repro.perf.cache`.
        """
        return (
            f"line-v1(global={int(self.include_global_features)},"
            f"{self.detector.cache_key})"
        )

    # ------------------------------------------------------------------
    def extract(self, table: Table) -> np.ndarray:
        """Feature matrix of shape ``(n_rows, n_features)``.

        Rows are produced for *every* line, including empty ones, so
        callers can index by the original line number; the classifiers
        select only non-empty lines.
        """
        n_rows, n_cols = table.shape
        profile = table_profile(table)
        features = np.zeros((n_rows, len(self.feature_names)))
        if n_rows == 0:
            return features

        empty_line = profile.empty_row
        above = _closest_non_empty(empty_line, direction=-1)
        below = _closest_non_empty(empty_line, direction=+1)

        features[:, 0] = self._empty_cell_ratio(profile, n_cols)
        features[:, 1] = self._discounted_cumulative_gain(profile)
        features[:, 2] = profile.row_keyword.astype(np.float64)
        features[:, 3] = self._word_amount(profile)
        features[:, 4], features[:, 5] = self._type_ratios(profile)
        features[:, 6] = self._line_position(n_rows)
        features[:, 7] = self._data_type_matching(profile, above)
        features[:, 8] = self._data_type_matching(profile, below)
        features[:, 9] = self._empty_neighbor_ratio(empty_line, -1)
        features[:, 10] = self._empty_neighbor_ratio(empty_line, +1)
        histograms = self._length_histograms(profile)
        features[:, 11] = self._cell_length_difference(histograms, above)
        features[:, 12] = self._cell_length_difference(histograms, below)
        features[:, 13] = self._derived_coverage(table, profile)

        if self.include_global_features:
            features[:, 14:] = self._global_features(
                empty_line, n_rows, n_cols
            )
        return features

    # ------------------------------------------------------------------
    # Content features
    # ------------------------------------------------------------------
    @staticmethod
    def _empty_cell_ratio(
        profile: TableProfile, n_cols: int
    ) -> np.ndarray:
        """Per-row ``1 - non_empty/n_cols`` (1.0 for zero-width tables)."""
        if n_cols == 0:
            return np.ones(profile.n_rows)
        return 1.0 - profile.row_non_empty / n_cols

    @staticmethod
    def _discounted_cumulative_gain(profile: TableProfile) -> np.ndarray:
        """Normalized DCG of each row's 0/1 emptiness vector.

        ``cumsum`` accumulates left to right exactly like the scalar
        reference (``repro.util.stats.discounted_cumulative_gain``).
        """
        n_cols = profile.n_cols
        if n_cols == 0:
            return np.zeros(profile.n_rows)
        discounts = np.array(
            [math.log2(position + 1) for position in range(1, n_cols + 1)]
        )
        relevance = profile.non_empty.astype(np.float64)
        gains = np.cumsum(relevance / discounts, axis=1)[:, -1]
        ideal = sum(
            1.0 / math.log2(position + 1)
            for position in range(1, n_cols + 1)
        )
        return gains / ideal if ideal > 0 else np.zeros(profile.n_rows)

    @staticmethod
    def _word_amount(profile: TableProfile) -> np.ndarray:
        """Min-max-normalized per-row word counts."""
        counts = profile.row_word_counts.astype(np.float64)
        if counts.size == 0:
            return counts
        low = counts.min()
        span = counts.max() - low
        if span == 0:
            return np.zeros_like(counts)
        return (counts - low) / span

    @staticmethod
    def _type_ratios(
        profile: TableProfile,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(numeric_ratio, string_ratio)`` per row over non-empty
        cells; fully empty rows score 0.0 on both."""
        non_empty = profile.row_non_empty
        numeric = np.zeros(profile.n_rows)
        strings = np.zeros(profile.n_rows)
        np.divide(
            profile.row_numeric, non_empty, out=numeric,
            where=non_empty > 0,
        )
        np.divide(
            profile.row_string, non_empty, out=strings,
            where=non_empty > 0,
        )
        return numeric, strings

    @staticmethod
    def _line_position(n_rows: int) -> np.ndarray:
        """Row index normalized to [0, 1] (0.0 for single-row tables)."""
        if n_rows <= 1:
            return np.zeros(n_rows)
        return np.arange(n_rows) / (n_rows - 1)

    # ------------------------------------------------------------------
    # Contextual features
    # ------------------------------------------------------------------
    @staticmethod
    def _data_type_matching(
        profile: TableProfile, neighbour: np.ndarray
    ) -> np.ndarray:
        """Share of columns whose data type matches the neighbour row
        (0.0 where there is no neighbour)."""
        result = np.zeros(profile.n_rows)
        valid = neighbour >= 0
        if profile.n_cols == 0 or not valid.any():
            return result
        grid = profile.dtype_grid
        matches = (grid[valid] == grid[neighbour[valid]]).sum(axis=1)
        result[valid] = matches / profile.n_cols
        return result

    @staticmethod
    def _empty_neighbor_ratio(
        empty_line: np.ndarray, direction: int
    ) -> np.ndarray:
        """Share of empty lines among the five lines above/below;
        positions beyond the file count as empty."""
        n_rows = len(empty_line)
        window = _NEIGHBOR_WINDOW
        padded = np.concatenate(
            [
                np.ones(window, dtype=np.int64),
                empty_line.astype(np.int64),
                np.ones(window, dtype=np.int64),
            ]
        )
        sums = np.concatenate([[0], np.cumsum(padded)])
        if direction < 0:
            counts = sums[window : window + n_rows] - sums[:n_rows]
        else:
            counts = (
                sums[2 * window + 1 : 2 * window + 1 + n_rows]
                - sums[window + 1 : window + 1 + n_rows]
            )
        return counts / window

    @staticmethod
    def _length_histograms(profile: TableProfile) -> np.ndarray:
        """``(n_rows, bins)`` histogram of stripped lengths of the
        non-empty cells of each row (the reference geometry: 10 bins
        over [0, 50), out-of-range clamped into boundary bins)."""
        n_rows = profile.n_rows
        histograms = np.zeros((n_rows, _LENGTH_BINS))
        mask = profile.non_empty
        if not mask.any():
            return histograms
        low, high = _LENGTH_RANGE
        width = (high - low) / _LENGTH_BINS
        lengths = profile.value_lengths.astype(np.float64)
        bins = ((lengths - low) / width).astype(np.int64)
        np.clip(bins, 0, _LENGTH_BINS - 1, out=bins)
        rows = np.nonzero(mask)[0]
        flat = rows * _LENGTH_BINS + bins[mask]
        counts = np.bincount(flat, minlength=n_rows * _LENGTH_BINS)
        return counts.reshape(n_rows, _LENGTH_BINS).astype(np.float64)

    @staticmethod
    def _cell_length_difference(
        histograms: np.ndarray, neighbour: np.ndarray
    ) -> np.ndarray:
        """Bhattacharyya distance between each row's length histogram
        and its neighbour's (1.0 where there is no neighbour)."""
        n_rows = histograms.shape[0]
        result = np.ones(n_rows)
        valid = np.nonzero(neighbour >= 0)[0]
        if valid.size == 0:
            return result
        here = histograms[valid]
        there = histograms[neighbour[valid]]
        total_here = here.sum(axis=1)
        total_there = there.sum(axis=1)
        both_zero = (total_here == 0) & (total_there == 0)
        one_zero = (total_here == 0) ^ (total_there == 0)
        distances = np.ones(valid.size)
        distances[both_zero] = 0.0
        live = np.nonzero(~(both_zero | one_zero))[0]
        if live.size:
            # Per-term ops mirror the scalar reference exactly:
            # sqrt((p / total_p) * (q / total_q)), summed left to
            # right via cumsum.
            p = here[live] / total_here[live, None]
            q = there[live] / total_there[live, None]
            coefficients = np.cumsum(np.sqrt(p * q), axis=1)[:, -1]
            coefficients = np.minimum(1.0, np.maximum(0.0, coefficients))
            distances[live] = 1.0 - coefficients
        result[valid] = distances
        return result

    # ------------------------------------------------------------------
    # Computational feature
    # ------------------------------------------------------------------
    def _derived_coverage(
        self, table: Table, profile: TableProfile
    ) -> np.ndarray:
        """Share of each row's numeric cells detected as derived
        (0.0 for rows without numeric cells)."""
        derived_mask = np.zeros(profile.shape, dtype=bool)
        for i, j in self.detector.detect(table):
            derived_mask[i, j] = True
        derived_counts = (derived_mask & profile.numeric_mask).sum(axis=1)
        numeric = profile.row_numeric
        coverage = np.zeros(profile.n_rows)
        np.divide(
            derived_counts, numeric, out=coverage, where=numeric > 0
        )
        return coverage

    # ------------------------------------------------------------------
    @staticmethod
    def _global_features(
        empty_line: np.ndarray, n_rows: int, n_cols: int
    ) -> np.ndarray:
        """The paper's rejected file-level features (ablation S2)."""
        empty_ratio = int(empty_line.sum()) / n_rows if n_rows else 0.0
        # Width and length squashed to [0, 1] with a soft saturation.
        width = n_cols / (n_cols + 25.0)
        length = n_rows / (n_rows + 100.0)
        starts = empty_line.copy()
        starts[1:] &= ~empty_line[:-1]
        blocks = int(starts.sum())
        block_count = blocks / (blocks + 5.0)
        return np.array([empty_ratio, width, length, block_count])


def _closest_non_empty(
    empty_line: np.ndarray, direction: int
) -> np.ndarray:
    """For each line, the index of the closest non-empty line in
    ``direction`` (-1 above, +1 below), or ``-1`` at the boundary."""
    n_rows = len(empty_line)
    indices = np.arange(n_rows)
    marked = np.where(~empty_line, indices, -1)
    if direction < 0:
        shifted = np.concatenate([[-1], marked[:-1]])
        return np.maximum.accumulate(shifted)
    marked = np.where(~empty_line, indices, n_rows)
    shifted = np.concatenate([marked[1:], [n_rows]])
    below = np.minimum.accumulate(shifted[::-1])[::-1]
    return np.where(below < n_rows, below, -1)
