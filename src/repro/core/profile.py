"""Columnar per-table cell primitives, computed exactly once.

The paper's scalability profiling (Section 6.3.4) puts the cost of
structure detection squarely in feature extraction, and before this
module existed the same per-cell primitives were recomputed in Python
loops by every extractor: the line features inferred a data type per
cell, the cell features re-inferred the same types and value lengths,
the derived-cell detector re-parsed every cell into a number, and the
block-size algorithm re-walked non-empty cells with a dict/set DFS.

:class:`TableProfile` computes each primitive **once per table** as a
columnar numpy array and memoizes the whole bundle on the
:class:`~repro.types.Table` instance, so every extractor — line, cell,
derived, blocks — pulls from the same arrays.  Two design points do
the heavy lifting:

* **Unique-value dispatch.**  Verbose CSV files repeat values heavily
  (years, group labels, blank padding, small integers), so each
  *distinct* stripped string is classified exactly once —
  :func:`~repro.core.datatypes.infer_data_type`,
  :func:`~repro.core.datatypes.parse_number`,
  :func:`~repro.core.keywords.contains_aggregation_keyword` and
  :func:`~repro.util.text.count_words` run per unique value — and the
  results are scattered back onto the grid with
  ``np.unique(..., return_inverse=True)``.  The regex cost scales with
  the vocabulary, not the cell count.
* **Vectorized connected components.**  Block sizes (Algorithm 1) are
  labeled with a run-based union-find: horizontal runs of non-empty
  cells are identified with one ``cumsum``, vertically adjacent runs
  are unioned, and sizes are scattered back per cell — no per-cell
  Python, same components as the published DFS.

Parity is the contract: every consumer rewired onto the profile
produces byte-identical output to its original per-extractor
implementation (``tests/test_profile_parity.py`` keeps the legacy
reference implementations and enforces this).

The profile is lazy — each array group is materialized on first
access via ``functools.cached_property`` — and safe to share: arrays
are computed deterministically, so the benign race of two threads
materializing the same property yields identical values.  Consumers
must treat every exposed array as read-only.
"""

from __future__ import annotations

from functools import cached_property
from typing import Protocol

import numpy as np

from repro.core.datatypes import infer_data_type, parse_number
from repro.core.keywords import contains_aggregation_keyword
from repro.perf.cache import table_content_hash
from repro.types import DataType, Table
from repro.util.text import count_words

#: Integer code of the ``EMPTY`` data type in :attr:`TableProfile.dtype_grid`.
EMPTY_CODE: int = int(DataType.EMPTY)

_NUMERIC_CODES: tuple[int, int] = (int(DataType.INT), int(DataType.FLOAT))


class SupportsDerivedDetection(Protocol):
    """What :meth:`TableProfile.derived_cells` needs from a detector.

    Structural typing keeps ``profile`` import-free of
    :mod:`repro.core.derived` (which imports this module in turn).
    """

    @property
    def cache_key(self) -> str:  # pragma: no cover - protocol
        ...

    def detect_profile(
        self, profile: "TableProfile"
    ) -> set[tuple[int, int]]:  # pragma: no cover - protocol
        ...


class TableProfile:
    """Lazily-computed columnar view of one table's cell primitives.

    Build instances through :func:`table_profile`, which memoizes the
    profile on the table, not by calling the constructor directly —
    a fresh profile per call would defeat the compute-once design.
    """

    def __init__(self, table: Table):
        self.table = table
        self.n_rows, self.n_cols = table.shape
        self.shape: tuple[int, int] = table.shape
        #: Per-detector-configuration memo of derived-cell sets, keyed
        #: by the detector's ``cache_key``.  The stored sets are shared
        #: with every caller and must not be mutated.
        self._derived_memo: dict[str, set[tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Unique-value dispatch
    # ------------------------------------------------------------------
    @cached_property
    def _dispatch(self) -> tuple[np.ndarray, np.ndarray]:
        """``(unique stripped values, inverse indices)`` for all cells.

        Object dtype keeps memory proportional to the distinct strings
        (one reference per cell) even when individual cells are huge.
        """
        stripped = [v.strip() for row in self.table.rows() for v in row]
        flat = np.empty(len(stripped), dtype=object)
        flat[:] = stripped
        unique, inverse = np.unique(flat, return_inverse=True)
        return unique, inverse.astype(np.intp, copy=False)

    @property
    def unique_values(self) -> np.ndarray:
        """Sorted distinct stripped cell values (object array)."""
        return self._dispatch[0]

    def _scatter(self, per_unique: np.ndarray) -> np.ndarray:
        """Spread per-unique results back onto the ``(n_rows, n_cols)``
        grid through the inverse indices."""
        return per_unique[self._dispatch[1]].reshape(self.shape)

    # ------------------------------------------------------------------
    # Cell-level grids
    # ------------------------------------------------------------------
    @cached_property
    def dtype_grid(self) -> np.ndarray:
        """``int8`` grid of :class:`~repro.types.DataType` codes."""
        unique = self.unique_values
        codes = np.fromiter(
            (int(infer_data_type(value)) for value in unique),
            dtype=np.int8,
            count=len(unique),
        )
        return self._scatter(codes)

    @cached_property
    def value_lengths(self) -> np.ndarray:
        """``float32`` grid of stripped cell-value lengths.

        Lengths are integers, exactly representable in ``float32`` up
        to :math:`2^{24}`; consumers needing ``float64`` arithmetic
        upcast first, which is exact.
        """
        unique = self.unique_values
        lengths = np.fromiter(
            (len(value) for value in unique),
            dtype=np.float32,
            count=len(unique),
        )
        return self._scatter(lengths)

    @cached_property
    def non_empty(self) -> np.ndarray:
        """Boolean mask of cells with visible content."""
        return self.dtype_grid != EMPTY_CODE

    @cached_property
    def empty_mask(self) -> np.ndarray:
        """Boolean mask of empty cells (complement of :attr:`non_empty`)."""
        return ~self.non_empty

    @cached_property
    def numeric_grid(self) -> np.ndarray:
        """``float64`` grid of parsed numbers; non-numeric cells are NaN."""
        unique = self.unique_values
        parsed = [parse_number(value) for value in unique]
        numbers = np.array(
            [np.nan if value is None else value for value in parsed],
            dtype=np.float64,
        )
        return self._scatter(numbers)

    @cached_property
    def keyword_mask(self) -> np.ndarray:
        """Boolean mask of cells containing an aggregation keyword."""
        unique = self.unique_values
        flags = np.fromiter(
            (contains_aggregation_keyword(value) for value in unique),
            dtype=bool,
            count=len(unique),
        )
        return self._scatter(flags)

    @cached_property
    def word_counts(self) -> np.ndarray:
        """``int64`` grid of alphanumeric word counts per cell."""
        unique = self.unique_values
        counts = np.fromiter(
            (count_words(value) for value in unique),
            dtype=np.int64,
            count=len(unique),
        )
        return self._scatter(counts)

    @cached_property
    def numeric_mask(self) -> np.ndarray:
        """Boolean mask of int/float cells (the arithmetic types)."""
        return (self.dtype_grid == _NUMERIC_CODES[0]) | (
            self.dtype_grid == _NUMERIC_CODES[1]
        )

    @cached_property
    def string_mask(self) -> np.ndarray:
        """Boolean mask of string-typed cells."""
        return self.dtype_grid == int(DataType.STRING)

    # ------------------------------------------------------------------
    # Row / column aggregates
    # ------------------------------------------------------------------
    @cached_property
    def empty_row(self) -> np.ndarray:
        """Per-row flag: every cell of the row is empty."""
        return self.empty_mask.all(axis=1)

    @cached_property
    def empty_col(self) -> np.ndarray:
        """Per-column flag: every cell of the column is empty."""
        return self.empty_mask.all(axis=0)

    @cached_property
    def row_empty_ratio(self) -> np.ndarray:
        """Per-row share of empty cells (``float64``)."""
        return self.empty_mask.mean(axis=1)

    @cached_property
    def col_empty_ratio(self) -> np.ndarray:
        """Per-column share of empty cells (``float64``)."""
        return self.empty_mask.mean(axis=0)

    @cached_property
    def row_non_empty(self) -> np.ndarray:
        """Per-row count of non-empty cells (``int64``)."""
        return self.non_empty.sum(axis=1)

    @cached_property
    def row_numeric(self) -> np.ndarray:
        """Per-row count of int/float cells (``int64``)."""
        return self.numeric_mask.sum(axis=1)

    @cached_property
    def row_string(self) -> np.ndarray:
        """Per-row count of string cells (``int64``)."""
        return self.string_mask.sum(axis=1)

    @cached_property
    def row_keyword(self) -> np.ndarray:
        """Per-row flag: any cell contains an aggregation keyword."""
        return self.keyword_mask.any(axis=1)

    @cached_property
    def col_keyword(self) -> np.ndarray:
        """Per-column flag: any cell contains an aggregation keyword."""
        return self.keyword_mask.any(axis=0)

    @cached_property
    def row_word_counts(self) -> np.ndarray:
        """Per-row total of alphanumeric word counts (``int64``)."""
        return self.word_counts.sum(axis=1)

    @cached_property
    def row_length_mean(self) -> np.ndarray:
        """Per-row mean stripped length over non-empty cells (0.0 for
        fully empty rows)."""
        return self._masked_length_mean(axis=1)

    @cached_property
    def col_length_mean(self) -> np.ndarray:
        """Per-column mean stripped length over non-empty cells (0.0
        for fully empty columns)."""
        return self._masked_length_mean(axis=0)

    def _masked_length_mean(self, axis: int) -> np.ndarray:
        lengths = np.where(
            self.non_empty, self.value_lengths.astype(np.float64), 0.0
        )
        sums = lengths.sum(axis=axis)
        counts = self.non_empty.sum(axis=axis)
        out = np.zeros_like(sums)
        np.divide(sums, counts, out=out, where=counts > 0)
        return out

    # ------------------------------------------------------------------
    # Block structure (Algorithm 1, vectorized)
    # ------------------------------------------------------------------
    @cached_property
    def _blocks(self) -> tuple[np.ndarray, np.ndarray]:
        """``(block_labels, block_size_grid)`` via run-based union-find.

        Horizontal runs of non-empty cells get ids from one row-major
        ``cumsum`` over run starts (runs cannot span rows because
        every row begins a new start); vertically adjacent runs are
        unioned; component sizes are the summed run lengths.
        """
        mask = self.non_empty
        labels = np.full(self.shape, -1, dtype=np.int64)
        sizes = np.zeros(self.shape, dtype=np.int64)
        if mask.size == 0 or not mask.any():
            return labels, sizes

        starts = mask.copy()
        starts[:, 1:] &= self.empty_mask[:, :-1]
        run_ids = np.full(self.shape, -1, dtype=np.int64)
        run_ids[mask] = np.cumsum(starts.reshape(-1))[mask.reshape(-1)] - 1
        n_runs = int(starts.sum())
        run_lengths = np.bincount(run_ids[mask], minlength=n_runs)

        parent = np.arange(n_runs, dtype=np.int64)

        def find(run: int) -> int:
            root = run
            while parent[root] != root:
                root = parent[root]
            while parent[run] != root:  # path compression
                parent[run], run = root, int(parent[run])
            return root

        both = mask[:-1] & mask[1:]
        vertical_pairs = np.stack(
            [run_ids[:-1][both], run_ids[1:][both]], axis=1
        )
        if vertical_pairs.size:
            for upper, lower in np.unique(vertical_pairs, axis=0):
                root_a, root_b = find(int(upper)), find(int(lower))
                if root_a != root_b:
                    parent[root_b] = root_a

        roots = np.fromiter(
            (find(run) for run in range(n_runs)),
            dtype=np.int64,
            count=n_runs,
        )
        component_sizes = np.zeros(n_runs, dtype=np.int64)
        np.add.at(component_sizes, roots, run_lengths)

        cell_roots = roots[run_ids[mask]]
        labels[mask] = cell_roots
        sizes[mask] = component_sizes[cell_roots]
        return labels, sizes

    @property
    def block_labels(self) -> np.ndarray:
        """``int64`` grid of connected-component labels under
        4-adjacency; ``-1`` for empty cells.  Labels are arbitrary but
        deterministic: two cells share a label iff they share a
        component."""
        return self._blocks[0]

    @property
    def block_size_grid(self) -> np.ndarray:
        """``int64`` grid of component sizes; ``0`` for empty cells."""
        return self._blocks[1]

    # ------------------------------------------------------------------
    # Derived-cell detection memo (Algorithm 2)
    # ------------------------------------------------------------------
    def derived_cells(
        self, detector: SupportsDerivedDetection
    ) -> set[tuple[int, int]]:
        """Detected derived cells, computed once per detector
        configuration (keyed by ``detector.cache_key``) and shared by
        the line and cell extractors.  Treat the returned set as
        read-only."""
        key = detector.cache_key
        detected = self._derived_memo.get(key)
        if detected is None:
            detected = detector.detect_profile(self)
            self._derived_memo[key] = detected
        return detected

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @cached_property
    def content_hash(self) -> str:
        """The table's content hash (see
        :func:`repro.perf.cache.table_content_hash`), computed once
        and shared by every feature-cache key for this table."""
        return table_content_hash(self.table)

    # ------------------------------------------------------------------
    def materialize(self) -> "TableProfile":
        """Force every columnar array (used by the benchmark's
        ``profile`` stage so later stages measure pure consumption)."""
        _ = (
            self.dtype_grid, self.value_lengths, self.non_empty,
            self.numeric_grid, self.keyword_mask, self.word_counts,
            self.empty_row, self.empty_col, self.row_empty_ratio,
            self.col_empty_ratio, self.row_non_empty, self.row_numeric,
            self.row_string, self.row_keyword, self.col_keyword,
            self.row_word_counts, self.row_length_mean,
            self.col_length_mean, self.block_labels,
            self.block_size_grid,
        )
        return self


def table_profile(table: Table) -> TableProfile:
    """The memoized :class:`TableProfile` of ``table``.

    The profile is stored on the table instance (tables are
    conceptually immutable), so any number of extractors — across one
    analyze, a fit, or repeated CV folds touching the same ``Table``
    object — share one computation.  Concurrent first calls race
    benignly: both compute identical arrays and last-write-wins.
    """
    profile = table._profile
    if not isinstance(profile, TableProfile):
        profile = TableProfile(table)
        table._profile = profile
    return profile
