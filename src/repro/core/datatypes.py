"""Cell data-type inference.

The cell feature ``DataType`` (Section 5.1) distinguishes four types —
``int``, ``float``, ``string`` and ``date`` — to which we add the
``EMPTY`` sentinel for blank cells.  :func:`parse_number` is the shared
numeric parser used by the derived cell detection (Algorithm 2): it
accepts thousands separators, leading currency symbols, trailing
percent signs and accounting-style parenthesized negatives.
"""

from __future__ import annotations

import re
from functools import lru_cache

from repro.types import DataType

#: Bound on the memo of each classification function.  Verbose CSV
#: corpora repeat values heavily (years, group labels, small
#: integers), so even a modest bound absorbs nearly all repeats while
#: keeping worst-case memory fixed.
_MEMO_SIZE = 65536

_INT_PATTERN = re.compile(r"^[+-]?\d{1,3}(,\d{3})+$|^[+-]?\d+$")
_FLOAT_PATTERN = re.compile(
    r"^[+-]?(\d{1,3}(,\d{3})+|\d+)?\.\d+([eE][+-]?\d+)?$"
    r"|^[+-]?\d+[eE][+-]?\d+$"
)
_DATE_PATTERNS = (
    re.compile(r"^\d{4}[-/.]\d{1,2}([-/.]\d{1,2})?$"),
    re.compile(r"^\d{1,2}[-/.]\d{1,2}[-/.]\d{2,4}$"),
    re.compile(
        r"^\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)"
        r"[a-z]*\.?\s*\d{0,4}$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?"
        r"\s+\d{1,2}(,?\s*\d{4})?$",
        re.IGNORECASE,
    ),
)
_NUMBER_CLEANUP = re.compile(r"^[\s$€£]+|[\s%]+$")


@lru_cache(maxsize=_MEMO_SIZE)
def infer_data_type(value: str) -> DataType:
    """The :class:`DataType` of a raw cell value.

    A four-digit bare number such as ``"2019"`` is classified as
    ``INT`` — the paper explicitly discusses numeric year headers being
    typed like data, which this choice reproduces.

    Memoized with a bounded LRU cache: the regex cascade runs once per
    distinct value, so callers outside the columnar
    :class:`~repro.core.profile.TableProfile` (dialect detection,
    baselines) also stop re-classifying repeated values.
    """
    stripped = value.strip()
    if not stripped:
        return DataType.EMPTY
    for pattern in _DATE_PATTERNS:
        if pattern.match(stripped):
            return DataType.DATE
    if _INT_PATTERN.match(stripped):
        return DataType.INT
    if _FLOAT_PATTERN.match(stripped):
        return DataType.FLOAT
    return DataType.STRING


def is_numeric_type(dtype: DataType) -> bool:
    """Whether the type participates in arithmetic (int or float)."""
    return dtype in (DataType.INT, DataType.FLOAT)


@lru_cache(maxsize=_MEMO_SIZE)
def parse_number(value: str) -> float | None:
    """Parse a cell into a float, or ``None`` if it is not numeric.

    Handles thousands separators (``1,234,567``), leading currency
    symbols, trailing percent signs, and accounting negatives
    (``(123)`` meaning ``-123``).  Dates are *not* numbers.

    Memoized like :func:`infer_data_type`; the returned floats are
    immutable, so sharing cached results is safe.
    """
    stripped = value.strip()
    if not stripped:
        return None
    negative = False
    if stripped.startswith("(") and stripped.endswith(")"):
        stripped = stripped[1:-1].strip()
        negative = True
    stripped = _NUMBER_CLEANUP.sub("", stripped)
    if not stripped:
        return None
    dtype = infer_data_type(stripped)
    if dtype not in (DataType.INT, DataType.FLOAT):
        return None
    try:
        number = float(stripped.replace(",", ""))
    except ValueError:  # pragma: no cover - patterns should prevent this
        return None
    return -number if negative else number
