"""The Strudel core: features, algorithms and classifiers.

This package implements the paper's primary contribution:

* :mod:`repro.core.datatypes` — cell data-type inference (int, float,
  string, date).
* :mod:`repro.core.keywords` — the aggregation keyword dictionary.
* :mod:`repro.core.blocks` — Algorithm 1 (block size via connected
  components of non-empty cells).
* :mod:`repro.core.derived` — Algorithm 2 (keyword-anchored derived
  cell detection for sum and mean).
* :mod:`repro.core.profile` — the columnar
  :class:`~repro.core.profile.TableProfile` of per-cell primitives,
  computed once per table and shared by every extractor.
* :mod:`repro.core.line_features` — the Table 1 line feature set.
* :mod:`repro.core.cell_features` — the Table 2 cell feature set.
* :mod:`repro.core.strudel` — ``StrudelLineClassifier`` (Strudel-L),
  ``StrudelCellClassifier`` (Strudel-C), the ``LineToCellBaseline``
  (Line-C) and the end-to-end :class:`~repro.core.strudel.StrudelPipeline`.
"""

from repro.core.blocks import block_sizes, normalized_block_sizes
from repro.core.columns import ColumnClassifier, refine_cell_predictions
from repro.core.datatypes import infer_data_type, parse_number
from repro.core.derived import DerivedDetector
from repro.core.cell_features import CellFeatureExtractor
from repro.core.extraction import ExtractedTable, extract_tables
from repro.core.keywords import AGGREGATION_KEYWORDS, contains_aggregation_keyword
from repro.core.line_features import LineFeatureExtractor
from repro.core.profile import TableProfile, table_profile
from repro.core.strudel import (
    LineToCellBaseline,
    StrudelCellClassifier,
    StrudelLineClassifier,
    StrudelPipeline,
)

__all__ = [
    "AGGREGATION_KEYWORDS",
    "CellFeatureExtractor",
    "ColumnClassifier",
    "DerivedDetector",
    "ExtractedTable",
    "LineFeatureExtractor",
    "LineToCellBaseline",
    "StrudelCellClassifier",
    "StrudelLineClassifier",
    "StrudelPipeline",
    "TableProfile",
    "block_sizes",
    "contains_aggregation_keyword",
    "extract_tables",
    "infer_data_type",
    "normalized_block_sizes",
    "parse_number",
    "refine_cell_predictions",
    "table_profile",
]
