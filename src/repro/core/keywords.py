"""The aggregation keyword dictionary (Section 4, ``AggregationWord``).

The paper uses a fixed, case-insensitive dictionary of "terms
associated with aggregation in tables": *total, all, sum, average,
avg, mean, median*.  The same dictionary anchors candidate cells in
the derived cell detection Algorithm 2.
"""

from __future__ import annotations

from repro.util.text import tokenize_words

#: The paper's aggregation term dictionary, lower-cased.
AGGREGATION_KEYWORDS: frozenset[str] = frozenset(
    {"total", "all", "sum", "average", "avg", "mean", "median"}
)


def contains_aggregation_keyword(text: str) -> bool:
    """Whether any word of ``text`` is an aggregation keyword.

    Matching is word-based and case-insensitive: ``"Grand Total:"``
    matches, ``"totally"`` does not.
    """
    return any(
        word.lower() in AGGREGATION_KEYWORDS for word in tokenize_words(text)
    )


def line_contains_aggregation_keyword(cells: list[str]) -> bool:
    """Whether any cell of a line contains an aggregation keyword."""
    return any(contains_aggregation_keyword(cell) for cell in cells)
