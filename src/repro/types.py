"""Core data model for verbose CSV structure detection.

This module defines the vocabulary shared by every other part of the
library:

* :class:`CellClass` — the paper's six-element taxonomy (Section 3.2)
  plus an ``EMPTY`` sentinel used for unlabelled empty cells.
* :class:`DataType` — the four cell data types used by the feature
  extractors (``int``, ``float``, ``string``, ``date``) plus ``EMPTY``.
* :class:`Table` — an immutable rectangular grid of raw string values.
* :class:`AnnotatedFile` — a table together with its ground-truth line
  and cell labels.
* :class:`Corpus` — a named collection of annotated files.

Tables are rectangular by construction: rows shorter than the widest
row are padded with empty strings when a :class:`Table` is created, so
every consumer can index ``table.cell(row, col)`` without bounds
anxiety.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Iterator, Sequence

from repro.errors import AnnotationError


class CellClass(Enum):
    """Semantic classes of lines and cells in a verbose CSV file.

    The six members mirror Section 3.2 of the paper.  ``EMPTY`` is a
    library-internal sentinel: empty cells and fully empty lines carry
    no annotation in the ground truth and are excluded from evaluation,
    exactly as the paper counts "only non-empty lines and cells".
    """

    METADATA = "metadata"
    HEADER = "header"
    GROUP = "group"
    DATA = "data"
    DERIVED = "derived"
    NOTES = "notes"
    EMPTY = "empty"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The six real content classes, in the paper's canonical order.
CONTENT_CLASSES: tuple[CellClass, ...] = (
    CellClass.METADATA,
    CellClass.HEADER,
    CellClass.GROUP,
    CellClass.DATA,
    CellClass.DERIVED,
    CellClass.NOTES,
)

#: Stable integer encoding used by all classifiers.
CLASS_TO_INDEX: dict[CellClass, int] = {c: i for i, c in enumerate(CONTENT_CLASSES)}
INDEX_TO_CLASS: dict[int, CellClass] = {i: c for c, i in CLASS_TO_INDEX.items()}


class DataType(IntEnum):
    """Data type of a single cell value (Section 5.1).

    The paper's cell feature ``DataType`` has four possible values
    (int, float, string, date); the neighbour profile extends the space
    with ``EMPTY`` and uses ``-1`` for neighbours that fall outside the
    table, which we expose as :data:`MISSING_NEIGHBOR`.
    """

    INT = 0
    FLOAT = 1
    STRING = 2
    DATE = 3
    EMPTY = 4


#: Sentinel for the data type / value length of out-of-table neighbours.
MISSING_NEIGHBOR: int = -1


@dataclass(frozen=True)
class Cell:
    """A single addressed cell: raw string value plus its coordinates."""

    row: int
    col: int
    value: str

    @property
    def is_empty(self) -> bool:
        """Whether the cell holds no visible content."""
        return not self.value.strip()


class Table:
    """A rectangular grid of raw string values.

    Parameters
    ----------
    rows:
        Sequence of rows, each a sequence of raw cell strings.  Rows are
        padded on the right with empty strings to the width of the
        longest row, making the table rectangular.

    Notes
    -----
    The table is conceptually immutable; mutating the underlying lists
    after construction is unsupported.
    """

    __slots__ = ("_rows", "_n_cols", "_profile")

    def __init__(self, rows: Sequence[Sequence[str]]):
        width = max((len(r) for r in rows), default=0)
        self._rows: list[list[str]] = [
            list(r) + [""] * (width - len(r)) for r in rows
        ]
        self._n_cols = width
        # Lazily-attached columnar profile (see repro.core.profile).
        # ``types`` sits below ``core`` in the layer DAG, so the slot
        # is declared here but only ever populated by
        # ``repro.core.profile.table_profile``.
        self._profile: object | None = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows (lines) in the table, including empty ones."""
        return len(self._rows)

    @property
    def n_cols(self) -> int:
        """Number of columns; identical for every row."""
        return self._n_cols

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)`` pair."""
        return self.n_rows, self.n_cols

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def cell(self, row: int, col: int) -> str:
        """Raw value at ``(row, col)``; raises ``IndexError`` off-grid."""
        if row < 0 or col < 0:
            raise IndexError(f"negative table index ({row}, {col})")
        return self._rows[row][col]

    def row(self, index: int) -> list[str]:
        """A copy of the row at ``index``."""
        return list(self._rows[index])

    def column(self, index: int) -> list[str]:
        """A copy of the column at ``index``."""
        if index < 0 or index >= self._n_cols:
            raise IndexError(f"column {index} out of range")
        return [r[index] for r in self._rows]

    def rows(self) -> Iterator[list[str]]:
        """Iterate over copies of all rows."""
        for r in self._rows:
            yield list(r)

    # ------------------------------------------------------------------
    # Emptiness helpers
    # ------------------------------------------------------------------
    def is_empty_cell(self, row: int, col: int) -> bool:
        """Whether the cell at ``(row, col)`` holds no visible content."""
        return not self._rows[row][col].strip()

    def is_empty_row(self, index: int) -> bool:
        """Whether every cell of the row is empty."""
        return all(not v.strip() for v in self._rows[index])

    def is_empty_column(self, index: int) -> bool:
        """Whether every cell of the column is empty."""
        return all(not r[index].strip() for r in self._rows)

    def non_empty_cells(self) -> Iterator[Cell]:
        """Iterate over all non-empty cells in row-major order."""
        for i, row in enumerate(self._rows):
            for j, value in enumerate(row):
                if value.strip():
                    yield Cell(i, j, value)

    def count_non_empty_cells(self) -> int:
        """Number of non-empty cells in the table."""
        return sum(1 for _ in self.non_empty_cells())

    def count_non_empty_rows(self) -> int:
        """Number of rows containing at least one non-empty cell."""
        return sum(1 for i in range(self.n_rows) if not self.is_empty_row(i))

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:  # Tables are conceptually immutable.
        return hash(tuple(tuple(r) for r in self._rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(shape={self.shape})"


@dataclass
class AnnotatedFile:
    """A verbose CSV table with ground-truth line and cell labels.

    Attributes
    ----------
    name:
        Identifier of the file within its corpus (used for grouped
        cross-validation so a file never straddles train and test).
    table:
        The rectangular raw-value grid.
    line_labels:
        One :class:`CellClass` per table row.  Empty rows carry
        ``CellClass.EMPTY``.
    cell_labels:
        One label row per table row, each with one :class:`CellClass`
        per column.  Empty cells carry ``CellClass.EMPTY``.
    """

    name: str
    table: Table
    line_labels: list[CellClass]
    cell_labels: list[list[CellClass]]

    def __post_init__(self) -> None:
        n_rows, n_cols = self.table.shape
        if len(self.line_labels) != n_rows:
            raise AnnotationError(
                f"{self.name}: {len(self.line_labels)} line labels for "
                f"{n_rows} rows"
            )
        if len(self.cell_labels) != n_rows:
            raise AnnotationError(
                f"{self.name}: {len(self.cell_labels)} cell label rows for "
                f"{n_rows} rows"
            )
        for i, label_row in enumerate(self.cell_labels):
            if len(label_row) != n_cols:
                raise AnnotationError(
                    f"{self.name}: row {i} has {len(label_row)} cell labels "
                    f"for {n_cols} columns"
                )

    # ------------------------------------------------------------------
    # Views used throughout evaluation
    # ------------------------------------------------------------------
    def non_empty_line_indices(self) -> list[int]:
        """Indices of rows with at least one non-empty cell."""
        return [
            i for i in range(self.table.n_rows) if not self.table.is_empty_row(i)
        ]

    def non_empty_line_labels(self) -> list[CellClass]:
        """Ground-truth classes of all non-empty lines, in order."""
        return [self.line_labels[i] for i in self.non_empty_line_indices()]

    def non_empty_cell_items(self) -> list[tuple[int, int, CellClass]]:
        """``(row, col, label)`` triples for every non-empty cell."""
        return [
            (cell.row, cell.col, self.cell_labels[cell.row][cell.col])
            for cell in self.table.non_empty_cells()
        ]

    def line_diversity_degree(self, row: int) -> int:
        """Number of distinct non-empty cell classes in a row (Table 3)."""
        classes = {
            label
            for label in self.cell_labels[row]
            if label is not CellClass.EMPTY
        }
        return len(classes)


@dataclass
class Corpus:
    """A named collection of annotated verbose CSV files."""

    name: str
    files: list[AnnotatedFile] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self) -> Iterator[AnnotatedFile]:
        return iter(self.files)

    def total_lines(self) -> int:
        """Total number of non-empty lines across all files."""
        return sum(len(f.non_empty_line_indices()) for f in self.files)

    def total_cells(self) -> int:
        """Total number of non-empty cells across all files."""
        return sum(f.table.count_non_empty_cells() for f in self.files)

    def merged_with(self, *others: "Corpus", name: str = "merged") -> "Corpus":
        """A new corpus containing this corpus's files plus ``others``'."""
        files = list(self.files)
        for other in others:
            files.extend(other.files)
        return Corpus(name=name, files=files)
