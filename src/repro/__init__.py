"""Strudel — structure detection in verbose CSV files.

A complete reproduction of "Structure Detection in Verbose CSV Files"
(Jiang, Vitagliano, Naumann — EDBT 2021): the Strudel line and cell
classifiers, the CRF-L / Pytheas-L / Line-C / RNN-C comparison
approaches, dialect detection, a from-scratch ML substrate, synthetic
verbose-CSV corpora with exact ground truth, and an evaluation harness
regenerating every table and figure of the paper.

Quickstart::

    from repro import StrudelPipeline, make_corpus

    corpus = make_corpus("saus", scale=0.2)
    pipeline = StrudelPipeline(n_estimators=30, random_state=0)
    pipeline.fit(corpus.files)
    result = pipeline.analyze("Report 2020\\n,Q1,Q2\\nNorth,5,7\\nTotal,5,7\\n")
    for i, klass in enumerate(result.line_classes):
        print(i, klass)
"""

from repro.core.strudel import (
    LineToCellBaseline,
    StrudelCellClassifier,
    StrudelLineClassifier,
    StrudelPipeline,
    StructureResult,
    set_default_classifier_factory as _set_default_classifier_factory,
)
from repro.datagen.corpora import make_corpus
from repro.dialect import Dialect, detect_dialect
from repro.errors import IngestError, ReproError
from repro.io.ingest import (
    IngestPolicy,
    IngestReport,
    IngestResult,
    ingest_bytes,
    ingest_path,
    ingest_text,
)
from repro.io.reader import read_table, read_table_text
from repro.ml.forest import RandomForestClassifier as _RandomForestClassifier
from repro.obs import Tracer, activate, get_metrics, get_tracer
from repro.perf.cache import FeatureCache
from repro.types import AnnotatedFile, CellClass, Corpus, DataType, Table

# Composition root: repro.core may not import repro.ml (layer rule
# R002), so the default Strudel backbone is bound here.  Python
# initializes this package before any repro.* submodule, so every
# import path sees the binding.
_set_default_classifier_factory(_RandomForestClassifier)

__version__ = "1.0.0"

__all__ = [
    "AnnotatedFile",
    "CellClass",
    "Corpus",
    "DataType",
    "Dialect",
    "FeatureCache",
    "IngestError",
    "IngestPolicy",
    "IngestReport",
    "IngestResult",
    "LineToCellBaseline",
    "ReproError",
    "StructureResult",
    "StrudelCellClassifier",
    "StrudelLineClassifier",
    "StrudelPipeline",
    "Table",
    "Tracer",
    "activate",
    "detect_dialect",
    "get_metrics",
    "get_tracer",
    "ingest_bytes",
    "ingest_path",
    "ingest_text",
    "make_corpus",
    "read_table",
    "read_table_text",
    "__version__",
]
