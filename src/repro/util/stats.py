"""Statistical primitives used by the Strudel feature extractors.

These are deliberately dependency-light, pure functions so the feature
code stays easy to test and to reason about:

* :func:`discounted_cumulative_gain` — the ``DiscountedCumulativeGain``
  line feature, modelling left-to-right layout of non-empty cells.
* :func:`bhattacharyya_distance` — histogram distance behind the
  ``CellLengthDifference`` contextual feature.
* :func:`min_max_normalize` — per-file normalization applied to
  features such as ``WordAmount``.
"""

from __future__ import annotations

import math
from typing import Sequence


def discounted_cumulative_gain(relevances: Sequence[float]) -> float:
    """Discounted cumulative gain of a relevance vector, normalized to [0, 1].

    The raw DCG is ``sum(rel_i / log2(i + 1))`` for 1-based positions
    ``i``.  We normalize by the DCG of the all-ones vector of the same
    length (the *ideal* vector for our 0/1 emptiness encoding), so the
    feature is comparable across lines of different widths, matching the
    paper's stated ``[0.0, 1.0]`` feature range.

    An empty vector has a gain of ``0.0``.
    """
    if not relevances:
        return 0.0
    gain = sum(
        rel / math.log2(position + 1)
        for position, rel in enumerate(relevances, start=1)
    )
    ideal = sum(
        1.0 / math.log2(position + 1)
        for position in range(1, len(relevances) + 1)
    )
    return gain / ideal if ideal > 0 else 0.0


def bhattacharyya_distance(
    hist_p: Sequence[float], hist_q: Sequence[float]
) -> float:
    """Bhattacharyya distance between two histograms, mapped to [0, 1].

    Both inputs are treated as unnormalized histograms over the same
    bins and are normalized to probability distributions first.  The
    Bhattacharyya coefficient ``BC = sum(sqrt(p_i * q_i))`` lies in
    ``[0, 1]``; we return ``1 - BC`` so identical distributions score
    ``0`` and disjoint distributions score ``1``, which keeps the
    ``CellLengthDifference`` feature within the paper's ``[0.0, 1.0]``
    range.

    Two all-zero histograms are considered identical (distance ``0``);
    one all-zero versus a non-zero histogram is maximally distant.
    """
    if len(hist_p) != len(hist_q):
        # util imports nothing (layer DAG), so no typed errors here;
        # callers pass same-shape histograms by construction.
        raise ValueError(  # repro: noqa[R102]
            f"histogram lengths differ: {len(hist_p)} vs {len(hist_q)}"
        )
    total_p = float(sum(hist_p))
    total_q = float(sum(hist_q))
    if total_p == 0.0 and total_q == 0.0:
        return 0.0
    if total_p == 0.0 or total_q == 0.0:
        return 1.0
    coefficient = sum(
        math.sqrt((p / total_p) * (q / total_q))
        for p, q in zip(hist_p, hist_q)
    )
    # Guard against floating point overshoot.
    coefficient = min(1.0, max(0.0, coefficient))
    return 1.0 - coefficient


def min_max_normalize(values: Sequence[float]) -> list[float]:
    """Min-max normalize ``values`` to [0, 1].

    If all values are identical the result is all zeros, a common
    convention that keeps constant features uninformative rather than
    undefined.
    """
    if not values:
        return []
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return [0.0] * len(values)
    return [(v - low) / span for v in values]


def histogram(values: Sequence[float], bins: int, low: float, high: float) -> list[float]:
    """Fixed-range histogram with ``bins`` equal-width buckets.

    Values outside ``[low, high]`` are clamped into the boundary
    buckets.  Used to histogram cell value lengths before computing the
    Bhattacharyya distance between adjacent lines.
    """
    # util imports nothing (layer DAG): internal-contract checks keep
    # raw ValueErrors, waived from R102.
    if bins <= 0:
        raise ValueError("bins must be positive")  # repro: noqa[R102]
    if high <= low:
        raise ValueError("high must exceed low")  # repro: noqa[R102]
    counts = [0.0] * bins
    width = (high - low) / bins
    for v in values:
        index = int((v - low) / width)
        index = min(max(index, 0), bins - 1)
        counts[index] += 1.0
    return counts
