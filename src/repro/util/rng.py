"""Deterministic random-stream helpers.

Everything in this library that uses randomness (forest bootstraps,
fold shuffles, corpus generation) accepts a ``seed`` or a numpy
``Generator``.  These helpers centralize the "seed or generator"
convention so call sites stay uniform and experiments reproduce
bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or an existing generator) into a numpy Generator.

    ``None`` yields a freshly seeded, non-deterministic generator;
    an ``int`` yields a deterministic one; an existing generator is
    passed through untouched so that callers can share a stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so a fixed parent seed
    produces a fixed family of children — used to give each tree of a
    random forest its own reproducible stream.
    """
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
