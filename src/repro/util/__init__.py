"""Small shared utilities: text handling, statistics, random streams."""

from repro.util.stats import (
    bhattacharyya_distance,
    discounted_cumulative_gain,
    min_max_normalize,
)
from repro.util.text import count_words, is_alphanumeric_word, tokenize_words

__all__ = [
    "bhattacharyya_distance",
    "discounted_cumulative_gain",
    "min_max_normalize",
    "count_words",
    "is_alphanumeric_word",
    "tokenize_words",
]
