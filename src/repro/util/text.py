"""Text helpers shared by the feature extractors.

The paper defines a *word* as "a sequence of alphanumeric characters"
(Section 4, ``WordAmount``).  These helpers implement that definition
once so every feature agrees on it.
"""

from __future__ import annotations

import re

_WORD_PATTERN = re.compile(r"[A-Za-z0-9]+")


def tokenize_words(text: str) -> list[str]:
    """Split ``text`` into maximal runs of alphanumeric characters.

    >>> tokenize_words("Total (2019): 1,234")
    ['Total', '2019', '1', '234']
    """
    return _WORD_PATTERN.findall(text)


def count_words(text: str) -> int:
    """Number of alphanumeric words in ``text``."""
    return len(tokenize_words(text))


def is_alphanumeric_word(token: str) -> bool:
    """Whether ``token`` is a single alphanumeric word."""
    return bool(token) and _WORD_PATTERN.fullmatch(token) is not None


def normalize_keyword(text: str) -> str:
    """Canonical form used for keyword-dictionary lookups."""
    return text.strip().lower()
