"""Process-local metrics registry: counters, gauges, timers.

One :class:`Metrics` instance per process (:func:`get_metrics`)
absorbs the pipeline's operational events — feature-cache hits and
misses, ingestion repairs, process-pool degradations, CV fold counts —
so "what did the system do?" has one queryable answer instead of a
scatter of per-object counters.  All mutation happens under a lock;
:meth:`Metrics.snapshot` returns a sorted, JSON-ready copy so readers
never see a torn state (the unlocked-read bug this module retires).

Names are dotted, lowercase, and owned by the emitting subsystem
(``feature_cache.hits``, ``ingest.recovered``,
``parallel.pool_degraded``, ``cv.folds``); the full glossary lives in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

#: Every metric name the pipeline may emit.  The metric-name lint
#: (R104) requires each ``increment``/``gauge``/``observe``/``time``
#: call site outside this module to use a literal from this tuple; a
#: trailing ``.*`` entry declares a wildcard family for dynamic names
#: built from a literal prefix (the per-corpus cache gauges).  Keep
#: this list in sync with the glossary in ``docs/observability.md``.
METRIC_NAMES: tuple[str, ...] = (
    "compiled_forest.compiles",
    "compiled_forest.nodes",
    "cv.folds",
    "cv.fold_seconds",
    "cv.feature_cache_attached",
    "feature_cache.hits",
    "feature_cache.misses",
    "feature_cache.evictions",
    "feature_cache.disk_errors",
    "feature_cache.*",
    "parallel.pool_degraded",
    "worker_pool.spawns",
    "worker_pool.reuses",
    "worker_pool.broken",
    "sweep.files",
    "sweep.skipped",
    "sweep.batches",
    "sweep.worker_crashes",
    "sweep_cache.hits",
    "sweep_cache.misses",
    "sweep_cache.evictions",
    "adapter.sources",
    "adapter.containers",
    "adapter.records",
    "adapter.errors",
    "ingest.files",
    "ingest.recovered",
    "ingest.bom_stripped",
    "ingest.replacement_chars",
    "ingest.nul_chars",
    "ingest.truncated_bytes",
    "ingest.unterminated_quote",
    "ingest.dialect_fallback",
    "serve.requests",
    "serve.results",
    "serve.dead_letters",
    "serve.replays",
    "serve.inflight",
)


class Metrics:
    """A thread-safe registry of counters, gauges and timers.

    * **counters** only ever increase (events, item counts);
    * **gauges** record the latest value of a level (cache size);
    * **timers** accumulate observed durations (count / total /
      min / max seconds).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    def increment(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample under the timer ``name``."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                self._timers[name] = [1.0, seconds, seconds, seconds]
            else:
                stats[0] += 1.0
                stats[1] += seconds
                stats[2] = min(stats[2], seconds)
                stats[3] = max(stats[3], seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time the ``with`` block and observe it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of the counter ``name`` (zero if unseen)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A consistent, sorted, JSON-ready copy of every metric."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name]
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name]
                    for name in sorted(self._gauges)
                },
                "timers": {
                    name: {
                        "count": int(self._timers[name][0]),
                        "total_seconds": self._timers[name][1],
                        "min_seconds": self._timers[name][2],
                        "max_seconds": self._timers[name][3],
                    }
                    for name in sorted(self._timers)
                },
            }

    def reset(self) -> None:
        """Drop every metric (tests; never called by library code)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


#: The process-local registry every subsystem reports into.
_METRICS = Metrics()


def get_metrics() -> Metrics:
    """The process-local :class:`Metrics` registry."""
    return _METRICS
