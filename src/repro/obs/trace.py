"""Span-based tracing on monotonic clocks.

A :class:`Tracer` records **spans** — named, nested intervals measured
with :func:`time.perf_counter` — through a context-manager API::

    tracer = Tracer()
    with activate(tracer):
        with tracer.span("analyze"):
            with tracer.span("parsing"):
                ...

Spans are recorded in *start order* with their parent index and
nesting depth, so a single-threaded run always produces the same span
tree for the same work (the ordering-determinism test pins this).
Instrumented code never receives a tracer argument: it asks
:func:`get_tracer` for the process-local active tracer, which is the
zero-cost :class:`NullTracer` unless a caller activated a real one
(``repro bench --trace``, the CLI ``--trace`` flag, or the
``REPRO_TRACE`` environment variable).  The disabled path is one
attribute lookup plus an empty context manager — nothing allocates,
nothing reads a clock — so tracing-off output is byte-identical to an
uninstrumented build.

The stage names used across the pipeline are declared once here
(:data:`PIPELINE_STAGES`) and shared by the instrumentation, the
benchmark harness and the docs, so a span in a trace file always
matches a row in the bench report.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: The canonical pipeline stage names, in execution order.  The
#: instrumentation in ``repro.io.ingest`` and ``repro.core.strudel``
#: emits exactly these names; ``repro.perf.bench`` reads its stage
#: table from spans carrying them (one source of truth for timings).
PIPELINE_STAGES: tuple[str, ...] = (
    "ingest_decode",
    "dialect_detection",
    "parsing",
    "profile",
    "line_features",
    "line_prediction",
    "cell_features",
    "cell_prediction",
)

#: Lifecycle spans that are legitimate but are not pipeline stages:
#: whole-call envelopes (``fit`` / ``analyze``), the evaluation
#: driver's loop structure (``cross_validate`` / ``cv_fold``) and the
#: one-off forest tensor packing (``forest_compile``).  The span-name
#: lint (R103) accepts these in addition to :data:`PIPELINE_STAGES`
#: but does not require call sites for them.
AUX_SPANS: tuple[str, ...] = (
    "fit",
    "analyze",
    "cross_validate",
    "cv_fold",
    "forest_compile",
    "sweep",
    "sweep_batch",
    "adapter_enumerate",
    "serve.batch",
    "serve.drain",
    "serve.replay",
)


@dataclass
class Span:
    """One named interval: where it sits in the tree and when it ran.

    ``index`` is the span's position in start order; ``parent`` is the
    index of the enclosing span (``None`` at the root) and ``depth``
    its nesting level.  ``start``/``end`` are monotonic
    ``perf_counter`` readings — meaningful only relative to each
    other, never as wall-clock timestamps.
    """

    name: str
    index: int
    parent: int | None
    depth: int
    start: float
    end: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (zero while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class Tracer:
    """Records a tree of spans; thread-safe, deterministic when serial.

    The span list is shared (appends are locked) while the *stack* of
    open spans is thread-local, so worker threads started inside a
    span each grow their own branch without corrupting the nesting of
    the others.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span named ``name``; closes when the block exits.

        Keyword arguments become the span's attributes (fold indices,
        repetition numbers, …) and travel into the emitted trace.
        """
        stack = self._stack()
        parent = stack[-1].index if stack else None
        with self._lock:
            record = Span(
                name=name,
                index=len(self.spans),
                parent=parent,
                depth=len(stack),
                start=time.perf_counter(),
                attributes=dict(attributes),
            )
            self.spans.append(record)
        stack.append(record)
        try:
            yield record
        finally:
            record.end = time.perf_counter()
            stack.pop()

    def durations(self, names: tuple[str, ...] | None = None,
                  start_index: int = 0) -> dict[str, float]:
        """First-occurrence duration per span name, in ``names`` order.

        ``start_index`` restricts the scan to spans started at or
        after that position — the benchmark harness uses it to read
        only the spans of its own traced run.
        """
        found: dict[str, float] = {}
        for record in self.spans[start_index:]:
            if names is not None and record.name not in names:
                continue
            if record.name not in found:
                found[record.name] = record.duration
        if names is None:
            return found
        return {name: found[name] for name in names if name in found}


class _NullSpan:
    """The reusable do-nothing context manager ``NullTracer`` returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every span is a shared no-op singleton.

    No clock is read, nothing is allocated per call, so instrumented
    hot paths cost one method call when tracing is off.
    """

    __slots__ = ()

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN


#: The process-wide null instance; ``get_tracer`` returns it until a
#: real tracer is activated.
NULL_TRACER = NullTracer()

_active_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-local active tracer (``NULL_TRACER`` by default)."""
    return _active_tracer


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer; returns the previous
    one so callers can restore it (prefer :func:`activate`)."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


@contextmanager
def activate(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Scope ``tracer`` as the active tracer for the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
