"""Trace emitters: one payload schema, text and JSON renderings.

:func:`trace_payload` freezes a tracer (and optionally the metrics
registry) into a plain dict tagged ``repro-trace/1``; the renderers
turn that payload into pretty-printed JSON for machines or an
indented span tree for terminals.  Span clocks are re-based so the
first span starts at zero — monotonic readings are meaningless as
absolutes and re-basing makes two traces of the same run comparable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import InvalidParameterError
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer

#: Schema tag for emitted traces, bumped on incompatible changes.
TRACE_SCHEMA = "repro-trace/1"

#: The emitter formats ``write_trace`` accepts.
TRACE_FORMATS = ("json", "text")


def trace_payload(
    tracer: Tracer, metrics: Metrics | None = None
) -> dict:
    """A JSON-ready dict of every span (and a metrics snapshot)."""
    origin = tracer.spans[0].start if tracer.spans else 0.0
    spans = [
        {
            "name": record.name,
            "index": record.index,
            "parent": record.parent,
            "depth": record.depth,
            "start_seconds": record.start - origin,
            "duration_seconds": record.duration,
            "attributes": record.attributes,
        }
        for record in tracer.spans
    ]
    payload: dict = {"schema": TRACE_SCHEMA, "spans": spans}
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    return payload


def render_trace_json(payload: dict) -> str:
    """Pretty-printed JSON for files and artifacts."""
    return json.dumps(payload, indent=2) + "\n"


def render_trace_text(payload: dict) -> str:
    """An indented span tree plus the metrics, for terminals."""
    lines = [f"trace ({payload['schema']})"]
    for span in payload["spans"]:
        indent = "  " * (span["depth"] + 1)
        attributes = span["attributes"]
        suffix = (
            " " + " ".join(
                f"{key}={attributes[key]}" for key in sorted(attributes)
            )
            if attributes
            else ""
        )
        lines.append(
            f"{indent}{span['name']:<24}"
            f"{span['duration_seconds'] * 1e3:>10.3f} ms{suffix}"
        )
    metrics = payload.get("metrics")
    if metrics:
        lines.append("metrics:")
        for name, value in metrics["counters"].items():
            lines.append(f"  {name} = {value}")
        for name, value in metrics["gauges"].items():
            lines.append(f"  {name} = {value:g}")
        for name, stats in metrics["timers"].items():
            lines.append(
                f"  {name}: count={stats['count']} "
                f"total={stats['total_seconds']:.3f}s "
                f"min={stats['min_seconds']:.3f}s "
                f"max={stats['max_seconds']:.3f}s"
            )
    return "\n".join(lines) + "\n"


def write_trace(
    path: str | Path,
    tracer: Tracer,
    metrics: Metrics | None = None,
    fmt: str = "json",
) -> Path:
    """Render the trace in ``fmt`` and write it to ``path``."""
    if fmt not in TRACE_FORMATS:
        raise InvalidParameterError(
            f"unknown trace format {fmt!r} (expected one of "
            f"{', '.join(TRACE_FORMATS)})"
        )
    payload = trace_payload(tracer, metrics)
    rendered = (
        render_trace_json(payload)
        if fmt == "json"
        else render_trace_text(payload)
    )
    path = Path(path)
    path.write_text(rendered, encoding="utf-8")
    return path
