"""Observability subsystem: tracing, metrics, and emitters.

``repro.obs`` is the zero-dependency substrate every layer reports
into — it sits just above ``errors`` in the layer DAG so ``io``,
``perf``, ``core`` and ``ml`` can all import it without cycles:

* :mod:`repro.obs.trace` — a span-based :class:`Tracer` on monotonic
  clocks with a process-local activation point (:func:`get_tracer` /
  :func:`activate`) and a zero-cost :class:`NullTracer` default, plus
  the canonical :data:`PIPELINE_STAGES` glossary shared with
  ``repro bench``;
* :mod:`repro.obs.metrics` — a process-local :class:`Metrics`
  registry (counters / gauges / timers) absorbing feature-cache
  statistics, ingestion repair events, pool degradations and CV fold
  counts;
* :mod:`repro.obs.emit` — the ``repro-trace/1`` payload plus text and
  JSON renderers behind the CLI ``--trace`` flag and ``REPRO_TRACE``.

Observability never changes results: with the default ``NullTracer``
the instrumented pipeline is byte-identical to an uninstrumented one,
and with tracing on it still is — spans only *watch*.
"""

from repro.obs.emit import (
    TRACE_FORMATS,
    TRACE_SCHEMA,
    render_trace_json,
    render_trace_text,
    trace_payload,
    write_trace,
)
from repro.obs.metrics import Metrics, get_metrics
from repro.obs.trace import (
    NULL_TRACER,
    PIPELINE_STAGES,
    NullTracer,
    Span,
    Tracer,
    activate,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "PIPELINE_STAGES",
    "Span",
    "TRACE_FORMATS",
    "TRACE_SCHEMA",
    "Tracer",
    "activate",
    "get_metrics",
    "get_tracer",
    "render_trace_json",
    "render_trace_text",
    "set_tracer",
    "trace_payload",
    "write_trace",
]
