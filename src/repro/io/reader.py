"""Reading verbose CSV files into :class:`~repro.types.Table` objects."""

from __future__ import annotations

from pathlib import Path

from repro.dialect.detector import detect_dialect
from repro.dialect.dialect import Dialect
from repro.parsing import parse_csv_text
from repro.types import Table


def read_table_text(text: str, dialect: Dialect | None = None) -> Table:
    """Parse CSV ``text`` into a rectangular :class:`Table`.

    When ``dialect`` is ``None`` it is detected from the text first —
    mirroring the paper's preprocessing, which runs dialect detection
    before any structure analysis.
    """
    if dialect is None:
        dialect = detect_dialect(text)
    rows = parse_csv_text(text, dialect)
    if not rows:
        rows = [[""]]
    return Table(rows)


def read_table(path: str | Path, dialect: Dialect | None = None,
               encoding: str = "utf-8") -> Table:
    """Read the CSV file at ``path`` into a :class:`Table`."""
    text = Path(path).read_text(encoding=encoding)
    return read_table_text(text, dialect=dialect)
