"""Reading verbose CSV files into :class:`~repro.types.Table` objects.

Both readers are thin facades over the hardened ingestion stage
(:mod:`repro.io.ingest`): encoding resolution, BOM stripping, the
strict/lenient damage policy and rectangular parsing all live there,
so the library, the CLI and the evaluation harness agree on what any
sequence of bytes contains.  Callers that need the
:class:`~repro.io.ingest.IngestReport` (what was repaired, which
encoding won) should call :func:`~repro.io.ingest.ingest_path` /
:func:`~repro.io.ingest.ingest_text` directly; these facades return
just the table.
"""

from __future__ import annotations

from pathlib import Path

from repro.dialect.dialect import Dialect
from repro.io.ingest import IngestPolicy, ingest_path, ingest_text, with_encoding
from repro.types import Table


def read_table_text(
    text: str,
    dialect: Dialect | None = None,
    policy: IngestPolicy | None = None,
) -> Table:
    """Parse CSV ``text`` into a rectangular :class:`Table`.

    When ``dialect`` is ``None`` it is detected from the text first —
    mirroring the paper's preprocessing, which runs dialect detection
    before any structure analysis.
    """
    return ingest_text(
        text, dialect=dialect, policy=policy or IngestPolicy()
    ).table


def read_table(
    path: str | Path,
    dialect: Dialect | None = None,
    encoding: str | None = None,
    policy: IngestPolicy | None = None,
) -> Table:
    """Read the CSV file at ``path`` into a :class:`Table`.

    ``encoding`` is a preference, not a demand: it is tried first, but
    a byte-order mark wins and the fallback chain still applies, so a
    mis-labelled file degrades to a reported repair instead of a
    ``UnicodeDecodeError`` (pass a strict
    :class:`~repro.io.ingest.IngestPolicy` to reject instead).
    """
    return ingest_path(
        path, dialect=dialect, policy=with_encoding(policy, encoding)
    ).table
