"""Source adapters in front of the ingest front door.

Importing this package registers every concrete adapter with the
suffix dispatcher in :mod:`repro.io.adapters.base`; the import order
below fixes the registry order, keeping enumeration deterministic.
See ``docs/robustness.md`` for the protocol and provenance format.
"""

from repro.io.adapters.base import (
    CONTAINER_SUFFIXES,
    MAX_CONTAINER_DEPTH,
    NDJSON_SUFFIXES,
    PROVENANCE_SEPARATOR,
    SOURCE_SUFFIXES,
    TABLE_SUFFIXES,
    TAR_SUFFIXES,
    XML_SUFFIXES,
    ZIP_SUFFIXES,
    SourceAdapter,
    SourcePayload,
    is_container_name,
    join_provenance,
    payloads_from_bytes,
    read_source,
    split_provenance,
    suffix_matches,
)
from repro.io.adapters.archive import (
    iter_tar_payloads,
    iter_zip_payloads,
)
from repro.io.adapters.records import (
    iter_ndjson_payloads,
    iter_xml_payloads,
)
from repro.io.adapters.directory import (
    DirectoryAdapter,
    FileAdapter,
    adapter_for,
    iter_source,
)

__all__ = [
    "CONTAINER_SUFFIXES",
    "MAX_CONTAINER_DEPTH",
    "NDJSON_SUFFIXES",
    "PROVENANCE_SEPARATOR",
    "SOURCE_SUFFIXES",
    "TABLE_SUFFIXES",
    "TAR_SUFFIXES",
    "XML_SUFFIXES",
    "ZIP_SUFFIXES",
    "DirectoryAdapter",
    "FileAdapter",
    "SourceAdapter",
    "SourcePayload",
    "adapter_for",
    "is_container_name",
    "iter_ndjson_payloads",
    "iter_source",
    "iter_tar_payloads",
    "iter_xml_payloads",
    "iter_zip_payloads",
    "join_provenance",
    "payloads_from_bytes",
    "read_source",
    "split_provenance",
    "suffix_matches",
]
