"""Source adapters: containers in, ingest-ready payloads out.

The paper's corpora are loose verbose-CSV files, but real data lakes
deliver the same content inside directories, zip/tar archives, NDJSON
logs and XML dumps.  An adapter's only job is *enumeration*: turn one
source location into a deterministic sequence of
:class:`SourcePayload` items — raw bytes plus a provenance string —
and hand every payload to the hardened :mod:`repro.io.ingest` front
door.  Adapters never decode bytes into a :class:`~repro.types.Table`
themselves, so the fuzz/strict/report guarantees of PR 4 carry over
to every container unchanged.

Provenance is a locator string: a loose file is its path, a container
member is ``container.zip!member.csv`` (nested containers chain the
``!`` separator; derived tables such as NDJSON records use the same
scheme, e.g. ``log.ndjson!records``).  The locator threads through
``CorpusEngine.process_payloads`` into ``FileResult.path`` and the
serve wire, and :func:`read_source` resolves it back to bytes.

Failure contract: a container that cannot be enumerated raises
:class:`~repro.errors.AdapterError` — a typed
:class:`~repro.errors.IngestError` — never a raw ``zipfile`` /
``tarfile`` / ``json`` / ``xml`` exception.  The adapter fuzz mode
(``repro fuzz --adapters``) locks this in.

Concrete adapters register themselves here at import time (the
package ``__init__`` imports them all), keyed by filename suffix;
:func:`payloads_from_bytes` is the shared dispatcher used by the
directory crawl, nested archive members and the fuzz harness alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Protocol, runtime_checkable

from repro.errors import AdapterError
from repro.io.ingest import DEFAULT_POLICY, IngestPolicy
from repro.obs import get_metrics

#: Separator between a container locator and a member name inside it.
PROVENANCE_SEPARATOR = "!"

#: How deep containers may nest (a zip inside a tar inside a zip is
#: depth 3).  Beyond this an enumeration raises AdapterError — the
#: typed answer to zip-bomb-style recursion.
MAX_CONTAINER_DEPTH = 3

#: Suffix groups, all matched case-insensitively.
TABLE_SUFFIXES: tuple[str, ...] = (".csv", ".tsv")
ZIP_SUFFIXES: tuple[str, ...] = (".zip",)
TAR_SUFFIXES: tuple[str, ...] = (
    ".tar", ".tgz", ".tar.gz", ".tar.bz2", ".tar.xz",
)
NDJSON_SUFFIXES: tuple[str, ...] = (".ndjson", ".jsonl")
XML_SUFFIXES: tuple[str, ...] = (".xml",)
CONTAINER_SUFFIXES: tuple[str, ...] = (
    ZIP_SUFFIXES + TAR_SUFFIXES + NDJSON_SUFFIXES + XML_SUFFIXES
)
#: Everything a lake crawl picks up.
SOURCE_SUFFIXES: tuple[str, ...] = TABLE_SUFFIXES + CONTAINER_SUFFIXES


@dataclass(frozen=True)
class SourcePayload:
    """One ingest-ready table source produced by an adapter.

    ``data`` is raw bytes destined for ``ingest_bytes`` (*not* text:
    encoding resolution belongs to the front door); ``provenance`` is
    the full locator (``lake/archive.zip!a/b.csv``) and ``source_id``
    its human-scale leaf name (``b.csv``).
    """

    source_id: str
    data: bytes
    provenance: str


@runtime_checkable
class SourceAdapter(Protocol):
    """The adapter protocol: one method, a deterministic enumeration."""

    def iterate(self) -> Iterator[SourcePayload]:
        """Yield every table source in this adapter's location."""
        ...


def join_provenance(container: str, member: str) -> str:
    """The locator of ``member`` inside ``container``."""
    return f"{container}{PROVENANCE_SEPARATOR}{member}"


def split_provenance(locator: str) -> tuple[str, str | None]:
    """Split a locator into ``(container_path, member_locator)``;
    the member part is ``None`` for a plain file path."""
    if PROVENANCE_SEPARATOR not in locator:
        return locator, None
    container, member = locator.split(PROVENANCE_SEPARATOR, 1)
    return container, member


def suffix_matches(name: str, suffixes: tuple[str, ...]) -> bool:
    """Case-insensitive suffix test (``data.CSV`` matches ``.csv``)."""
    lowered = name.lower()
    return any(lowered.endswith(suffix) for suffix in suffixes)


def is_container_name(name: str) -> bool:
    """Whether ``name`` names a container the adapters can open."""
    return suffix_matches(name, CONTAINER_SUFFIXES)


#: A dispatcher turns container bytes into payloads:
#: ``(name, data, policy, depth) -> Iterator[SourcePayload]``.
Dispatcher = Callable[
    [str, bytes, IngestPolicy, int], Iterator[SourcePayload]
]

#: Ordered suffix -> dispatcher registry; concrete adapter modules
#: append at import time, so the order is fixed by the package
#: ``__init__`` and enumeration stays deterministic.
_DISPATCHERS: list[tuple[tuple[str, ...], Dispatcher]] = []


def register_dispatcher(
    suffixes: tuple[str, ...], dispatcher: Dispatcher
) -> None:
    """Register a container dispatcher for a suffix group."""
    _DISPATCHERS.append((suffixes, dispatcher))


def payloads_from_bytes(
    name: str,
    data: bytes,
    policy: IngestPolicy = DEFAULT_POLICY,
    depth: int = 0,
) -> Iterator[SourcePayload]:
    """Dispatch raw bytes named ``name`` to the matching adapter.

    Container suffixes fan out into their members (recursively, up to
    :data:`MAX_CONTAINER_DEPTH`); anything else is a table payload
    passed through as-is, with ``name`` as its provenance.  Raises
    :class:`~repro.errors.AdapterError` when a container is damaged
    or nested too deeply.
    """
    metrics = get_metrics()
    if depth > MAX_CONTAINER_DEPTH:
        metrics.increment("adapter.errors")
        raise AdapterError(
            f"container nesting deeper than {MAX_CONTAINER_DEPTH} "
            f"at {name!r}"
        )
    for suffixes, dispatcher in _DISPATCHERS:
        if not suffix_matches(name, suffixes):
            continue
        metrics.increment("adapter.containers")
        try:
            for payload in dispatcher(name, data, policy, depth):
                metrics.increment("adapter.sources")
                yield payload
        except AdapterError:
            metrics.increment("adapter.errors")
            raise
        return
    metrics.increment("adapter.sources")
    yield SourcePayload(
        source_id=_leaf_name(name), data=data, provenance=name
    )


def read_source(
    locator: str, policy: IngestPolicy = DEFAULT_POLICY
) -> bytes:
    """Resolve a path or provenance locator back to payload bytes.

    A plain path reads directly (``OSError`` propagates, as for any
    missing file); a ``container!member`` locator re-enumerates the
    container and returns the matching payload — so the serve wire
    can classify any source a sweep reported, by its provenance.
    """
    container, member = split_provenance(locator)
    data = Path(container).read_bytes()
    if member is None:
        return data
    for payload in payloads_from_bytes(container, data, policy):
        if payload.provenance == locator:
            return payload.data
    raise AdapterError(
        f"no source {locator!r} found in container {container!r}"
    )


def _leaf_name(name: str) -> str:
    """The human-scale leaf of a locator (``b.csv`` of
    ``lake/a.zip!sub/b.csv``)."""
    leaf = name.rsplit(PROVENANCE_SEPARATOR, 1)[-1]
    return leaf.replace("\\", "/").rsplit("/", 1)[-1]
