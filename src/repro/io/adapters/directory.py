"""Directory and single-file adapters — the lake-crawl entry points.

:class:`DirectoryAdapter` fixes the CLI sweep's old
``glob("*.csv")``: the crawl is recursive (``rglob``), matches
suffixes case-insensitively (``data.CSV``, ``ARCHIVE.Zip``), and
opens every recognised container it finds.  Enumeration is sorted,
so two crawls of the same tree yield the same payload order.

A container that cannot be opened (corrupt zip, malformed NDJSON) is
*skipped, not fatal*: the crawl records ``(provenance, reason)`` on
``DirectoryAdapter.skipped`` and moves on — a lake sweep must survive
one bad archive — while :class:`FileAdapter` (one explicit source)
propagates the :class:`~repro.errors.AdapterError` to the caller.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.errors import AdapterError
from repro.io.adapters.base import (
    DEFAULT_POLICY,
    SOURCE_SUFFIXES,
    IngestPolicy,
    SourcePayload,
    payloads_from_bytes,
    suffix_matches,
)
from repro.obs import get_tracer


class FileAdapter:
    """One explicit source file: a loose table or a container."""

    def __init__(
        self,
        path: str | Path,
        policy: IngestPolicy = DEFAULT_POLICY,
    ):
        self.path = Path(path)
        self.policy = policy

    def candidates(self) -> list[Path]:
        """The single path (empty when it does not exist)."""
        return [self.path] if self.path.is_file() else []

    def iterate(self) -> Iterator[SourcePayload]:
        try:
            data = self.path.read_bytes()
        except OSError as exc:
            raise AdapterError(
                f"cannot read {self.path}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        yield from payloads_from_bytes(
            str(self.path), data, self.policy
        )


class DirectoryAdapter:
    """Recursive, case-insensitive crawl over a directory tree."""

    def __init__(
        self,
        root: str | Path,
        policy: IngestPolicy = DEFAULT_POLICY,
        suffixes: tuple[str, ...] = SOURCE_SUFFIXES,
        recursive: bool = True,
    ):
        self.root = Path(root)
        self.policy = policy
        self.suffixes = tuple(s.lower() for s in suffixes)
        self.recursive = recursive
        #: ``(provenance, reason)`` for every entry the last
        #: :meth:`iterate` could not enumerate; reset per call.
        self.skipped: list[tuple[str, str]] = []

    def candidates(self) -> list[Path]:
        """Every file in the tree with a recognised suffix, sorted."""
        if not self.root.is_dir():
            raise AdapterError(
                f"not a directory: {self.root}"
            )
        if self.recursive:
            walked = sorted(self.root.rglob("*"))
        else:
            walked = sorted(self.root.glob("*"))
        return [
            path for path in walked
            if path.is_file()
            and suffix_matches(path.name, self.suffixes)
        ]

    def iterate(self) -> Iterator[SourcePayload]:
        self.skipped = []
        with get_tracer().span("adapter_enumerate"):
            candidates = self.candidates()
        for path in candidates:
            try:
                data = path.read_bytes()
            except OSError as exc:
                self.skipped.append(
                    (str(path), f"{type(exc).__name__}: {exc}")
                )
                continue
            try:
                yield from payloads_from_bytes(
                    str(path), data, self.policy
                )
            except AdapterError as exc:
                # Payloads already yielded from a container that dies
                # mid-enumeration stand; the container itself is
                # recorded as skipped.
                self.skipped.append((str(path), str(exc)))
                continue


def adapter_for(
    path: str | Path, policy: IngestPolicy = DEFAULT_POLICY
) -> "DirectoryAdapter | FileAdapter":
    """The right adapter for ``path``: a crawl for directories, a
    single-source adapter for files."""
    target = Path(path)
    if target.is_dir():
        return DirectoryAdapter(target, policy)
    return FileAdapter(target, policy)


def iter_source(
    path: str | Path, policy: IngestPolicy = DEFAULT_POLICY
) -> Iterator[SourcePayload]:
    """Enumerate every payload under ``path`` (file or directory)."""
    return adapter_for(path, policy).iterate()
