"""Record-stream adapters: NDJSON logs and XML dumps → rectangles.

Both adapters decode their bytes through :func:`decode_bytes`, so the
front door's BOM/encoding/size hardening applies before a single
record is parsed, then render a rectangular table and re-encode it as
UTF-8 CSV bytes for ``ingest_bytes``.  Rendering is deterministic:
column order is first-seen order, array-valued cells join with ``|``
in document order (the dblp-to-csv convention), nested objects
serialise as compact sorted JSON.

The XML mapping follows dblp-to-csv: the document's root children
group by tag into one table per element type
(``dump.xml!article``, ``dump.xml!book``…), columns are the union of
attribute names and child-element tags, and repeated child elements
become one ``|``-joined cell.

Malformed input — a line that is not JSON, records of mixed shape,
unparseable XML — raises :class:`~repro.errors.AdapterError`; raw
``json``/``xml`` exceptions never escape.
"""

from __future__ import annotations

import json
from typing import Iterator
from xml.etree import ElementTree

from repro.errors import AdapterError
from repro.io.adapters.base import (
    DEFAULT_POLICY,
    NDJSON_SUFFIXES,
    XML_SUFFIXES,
    IngestPolicy,
    SourcePayload,
    join_provenance,
    register_dispatcher,
)
from repro.io.ingest import decode_bytes
from repro.io.writer import write_csv_text
from repro.obs import get_metrics

#: Joins the items of an array-valued cell (dblp-to-csv style).
ARRAY_JOIN = "|"


def iter_ndjson_payloads(
    name: str,
    data: bytes,
    policy: IngestPolicy = DEFAULT_POLICY,
    depth: int = 0,
) -> Iterator[SourcePayload]:
    """The NDJSON stream ``data`` as one rectangular table payload
    (provenance ``name!records``)."""
    text, _report = decode_bytes(data, policy)
    records: list[object] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            raise AdapterError(
                f"{name!r} line {number} is not valid JSON: {exc}"
            ) from exc
    rows = _rectangle(records, name)
    get_metrics().increment("adapter.records", len(records))
    yield SourcePayload(
        source_id="records",
        data=write_csv_text(rows).encode("utf-8"),
        provenance=join_provenance(name, "records"),
    )


def _rectangle(
    records: list[object], name: str
) -> list[list[str]]:
    """Records of one homogeneous shape → header row + value rows."""
    if not records:
        return []
    if all(isinstance(record, dict) for record in records):
        columns: list[str] = []
        for record in records:
            for key in record:  # type: ignore[union-attr]
                if key not in columns:
                    columns.append(key)
        rows = [list(columns)]
        for record in records:
            rows.append([
                _render(record[key]) if key in record else ""
                for key in columns
            ])
        return rows
    if all(isinstance(record, (list, tuple)) for record in records):
        width = max(len(record) for record in records)
        rows = [[f"col{index}" for index in range(width)]]
        for record in records:
            values = [_render(value) for value in record]
            values.extend([""] * (width - len(values)))
            rows.append(values)
        return rows
    if all(
        not isinstance(record, (dict, list, tuple))
        for record in records
    ):
        return [["value"]] + [[_render(record)] for record in records]
    raise AdapterError(
        f"{name!r} mixes JSON record shapes (objects, arrays and "
        f"scalars cannot share one table)"
    )


def _render(value: object) -> str:
    """One JSON value as a deterministic cell string."""
    if value is None:
        return ""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        if all(
            not isinstance(item, (dict, list, tuple))
            for item in value
        ):
            return ARRAY_JOIN.join(_render(item) for item in value)
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def iter_xml_payloads(
    name: str,
    data: bytes,
    policy: IngestPolicy = DEFAULT_POLICY,
    depth: int = 0,
) -> Iterator[SourcePayload]:
    """The XML document ``data`` as one table per root-child element
    tag (``name!article``, ``name!book``…), dblp-to-csv style."""
    text, _report = decode_bytes(data, policy)
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise AdapterError(
            f"cannot parse XML {name!r}: {exc}"
        ) from exc
    order: list[str] = []
    groups: dict[str, list[ElementTree.Element]] = {}
    for element in root:
        if not isinstance(element.tag, str):
            continue  # comments and processing instructions
        if element.tag not in groups:
            order.append(element.tag)
            groups[element.tag] = []
        groups[element.tag].append(element)
    metrics = get_metrics()
    for tag in order:
        elements = groups[tag]
        rows = _element_table(elements)
        metrics.increment("adapter.records", len(elements))
        yield SourcePayload(
            source_id=tag,
            data=write_csv_text(rows).encode("utf-8"),
            provenance=join_provenance(name, tag),
        )


def _element_table(
    elements: "list[ElementTree.Element]",
) -> list[list[str]]:
    """One element group → header + rows: columns are the first-seen
    union of attribute names and child tags; repeated child tags join
    with ``|`` in document order."""
    columns: list[str] = []
    for element in elements:
        for key in element.attrib:
            if key not in columns:
                columns.append(key)
        for child in element:
            if isinstance(child.tag, str) and child.tag not in columns:
                columns.append(child.tag)
    if not columns:
        # Leaf-only records (<id>x</id> with no structure): one text
        # column keeps the group tabular instead of empty.
        return [["text"]] + [
            ["".join(element.itertext()).strip()]
            for element in elements
        ]
    rows = [list(columns)]
    for element in elements:
        row: list[str] = []
        for column in columns:
            if column in element.attrib:
                row.append(element.attrib[column])
                continue
            matches = [
                "".join(child.itertext()).strip()
                for child in element
                if child.tag == column
            ]
            row.append(ARRAY_JOIN.join(matches))
        rows.append(row)
    return rows


register_dispatcher(NDJSON_SUFFIXES, iter_ndjson_payloads)
register_dispatcher(XML_SUFFIXES, iter_xml_payloads)
