"""Zip and tar adapters: archive bytes in, member payloads out.

Members are enumerated in sorted-name order (archives record
insertion order, which is a build artifact, not content), filtered to
the suffixes the lake crawl recognises, and read with a per-member
budget of ``policy.max_bytes + 1`` bytes — one byte over, so the
ingest size guard still *sees* an oversize member (strict mode
rejects it, lenient mode truncates and reports) while a pathological
member cannot balloon memory.  Nested containers (a zip inside a
tar) recurse through the shared dispatcher up to the depth budget.

Any damage the stdlib surfaces — truncated central directory, bad
compressed stream, unsupported compression — is re-raised as a typed
:class:`~repro.errors.AdapterError`; raw ``zipfile``/``tarfile``
exceptions never escape.
"""

from __future__ import annotations

import io
import lzma
import tarfile
import zipfile
import zlib
from typing import Iterator

from repro.errors import AdapterError
from repro.io.adapters.base import (
    DEFAULT_POLICY,
    SOURCE_SUFFIXES,
    TAR_SUFFIXES,
    ZIP_SUFFIXES,
    IngestPolicy,
    SourcePayload,
    join_provenance,
    payloads_from_bytes,
    register_dispatcher,
    suffix_matches,
)

#: What a damaged or unsupported archive raises inside the stdlib.
#: ``RuntimeError`` is zipfile's channel for encrypted members,
#: ``NotImplementedError`` its channel for unknown compression types,
#: and the compression codecs add their own error classes.
_ARCHIVE_DAMAGE: tuple[type[BaseException], ...] = (
    zipfile.BadZipFile,
    zipfile.LargeZipFile,
    tarfile.TarError,
    OSError,
    EOFError,
    ValueError,
    NotImplementedError,
    RuntimeError,
    zlib.error,
    lzma.LZMAError,
)


def iter_zip_payloads(
    name: str,
    data: bytes,
    policy: IngestPolicy = DEFAULT_POLICY,
    depth: int = 0,
) -> Iterator[SourcePayload]:
    """Every recognised member of the zip archive ``data``."""
    try:
        with zipfile.ZipFile(io.BytesIO(data)) as archive:
            members = sorted(
                info.filename
                for info in archive.infolist()
                if not info.is_dir()
                and suffix_matches(info.filename, SOURCE_SUFFIXES)
            )
            for member in members:
                with archive.open(member) as handle:
                    payload = handle.read(policy.max_bytes + 1)
                yield from payloads_from_bytes(
                    join_provenance(name, member),
                    payload,
                    policy,
                    depth + 1,
                )
    except AdapterError:
        raise
    except _ARCHIVE_DAMAGE as exc:
        raise AdapterError(
            f"cannot read zip {name!r}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def iter_tar_payloads(
    name: str,
    data: bytes,
    policy: IngestPolicy = DEFAULT_POLICY,
    depth: int = 0,
) -> Iterator[SourcePayload]:
    """Every recognised member of the (possibly compressed) tar
    archive ``data``; compression is auto-detected (``r:*``)."""
    try:
        with tarfile.open(fileobj=io.BytesIO(data), mode="r:*") as archive:
            members = sorted(
                member.name
                for member in archive.getmembers()
                if member.isfile()
                and suffix_matches(member.name, SOURCE_SUFFIXES)
            )
            for member_name in members:
                handle = archive.extractfile(member_name)
                if handle is None:
                    continue
                with handle:
                    payload = handle.read(policy.max_bytes + 1)
                yield from payloads_from_bytes(
                    join_provenance(name, member_name),
                    payload,
                    policy,
                    depth + 1,
                )
    except AdapterError:
        raise
    except _ARCHIVE_DAMAGE as exc:
        raise AdapterError(
            f"cannot read tar {name!r}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


register_dispatcher(ZIP_SUFFIXES, iter_zip_payloads)
register_dispatcher(TAR_SUFFIXES, iter_tar_payloads)
