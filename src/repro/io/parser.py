"""Re-export of the dialect-aware tokenizer (see :mod:`repro.parsing`).

Kept for API compatibility: the tokenizer lives in a leaf module so
both :mod:`repro.io` and :mod:`repro.dialect` can use it without a
circular import.
"""

from repro.parsing import (
    ParseOutcome,
    parse_csv_outcome,
    parse_csv_text,
    split_record,
)

__all__ = [
    "ParseOutcome",
    "parse_csv_outcome",
    "parse_csv_text",
    "split_record",
]
