"""Cropping marginal empty lines and columns.

The paper's data preparation "cropped each file by removing the
marginal empty lines or columns", because leading/trailing empties are
trivial and would distort emptiness-sensitive features.  This module
implements that step for both bare tables and annotated files.
"""

from __future__ import annotations

from repro.types import AnnotatedFile, Table


def _crop_bounds(table: Table) -> tuple[int, int, int, int]:
    """``(row_start, row_stop, col_start, col_stop)`` of the content box.

    For a fully empty table the bounds collapse to an empty box
    ``(0, 0, 0, 0)``.
    """
    n_rows, n_cols = table.shape
    row_start = 0
    while row_start < n_rows and table.is_empty_row(row_start):
        row_start += 1
    if row_start == n_rows:
        return 0, 0, 0, 0
    row_stop = n_rows
    while row_stop > row_start and table.is_empty_row(row_stop - 1):
        row_stop -= 1
    col_start = 0
    while col_start < n_cols and table.is_empty_column(col_start):
        col_start += 1
    col_stop = n_cols
    while col_stop > col_start and table.is_empty_column(col_stop - 1):
        col_stop -= 1
    return row_start, row_stop, col_start, col_stop


def crop_table(table: Table) -> Table:
    """A new table with marginal empty rows and columns removed.

    Interior empty rows and columns — meaningful visual separators —
    are preserved.  A fully empty input yields a 1x1 empty table so
    downstream shape assumptions hold.
    """
    row_start, row_stop, col_start, col_stop = _crop_bounds(table)
    if row_start == row_stop or col_start == col_stop:
        return Table([[""]])
    rows = [
        table.row(i)[col_start:col_stop] for i in range(row_start, row_stop)
    ]
    return Table(rows)


def crop_annotated_file(annotated: AnnotatedFile) -> AnnotatedFile:
    """Crop a file and its label grids consistently."""
    bounds = _crop_bounds(annotated.table)
    row_start, row_stop, col_start, col_stop = bounds
    if row_start == row_stop or col_start == col_stop:
        from repro.types import CellClass

        return AnnotatedFile(
            name=annotated.name,
            table=Table([[""]]),
            line_labels=[CellClass.EMPTY],
            cell_labels=[[CellClass.EMPTY]],
        )
    rows = [
        annotated.table.row(i)[col_start:col_stop]
        for i in range(row_start, row_stop)
    ]
    line_labels = annotated.line_labels[row_start:row_stop]
    cell_labels = [
        annotated.cell_labels[i][col_start:col_stop]
        for i in range(row_start, row_stop)
    ]
    return AnnotatedFile(
        name=annotated.name,
        table=Table(rows),
        line_labels=line_labels,
        cell_labels=cell_labels,
    )
