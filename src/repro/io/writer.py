"""Writing tables back out as CSV text under a chosen dialect."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.dialect.dialect import Dialect
from repro.types import Table


def _needs_quoting(value: str, dialect: Dialect) -> bool:
    specials = {dialect.delimiter, "\n", "\r"}
    if dialect.quotechar:
        specials.add(dialect.quotechar)
    return any(ch in value for ch in specials)


def _encode_field(value: str, dialect: Dialect) -> str:
    """Encode a single field, quoting/escaping as the dialect requires."""
    if not _needs_quoting(value, dialect):
        return value
    quote = dialect.quotechar
    if quote:
        if dialect.escapechar:
            escaped = value.replace(
                dialect.escapechar, dialect.escapechar * 2
            ).replace(quote, dialect.escapechar + quote)
        else:
            escaped = value.replace(quote, quote * 2)
        return f"{quote}{escaped}{quote}"
    if dialect.escapechar:
        out = []
        for ch in value:
            if ch in (dialect.delimiter, dialect.escapechar, "\n", "\r"):
                out.append(dialect.escapechar)
            out.append(ch)
        return "".join(out)
    # No quoting mechanism available: replace the offending characters,
    # which loses information but never corrupts the record structure.
    return (
        value.replace(dialect.delimiter, " ")
        .replace("\n", " ")
        .replace("\r", " ")
    )


def write_csv_text(rows: Iterable[Sequence[str]],
                   dialect: Dialect | None = None) -> str:
    """Serialize ``rows`` as CSV text under ``dialect`` (standard default)."""
    if dialect is None:
        dialect = Dialect.standard()
    lines = [
        dialect.delimiter.join(_encode_field(v, dialect) for v in row)
        for row in rows
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_table(table: Table, path: str | Path,
                dialect: Dialect | None = None,
                encoding: str = "utf-8") -> None:
    """Write ``table`` to ``path`` as CSV."""
    Path(path).write_text(write_csv_text(table.rows(), dialect),
                          encoding=encoding)
