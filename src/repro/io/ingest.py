"""Hardened ingestion: bytes (or text) in, ``Table`` + report out.

Real verbose CSV files arrive with byte-order marks, mixed or wrong
encodings, NUL bytes, unterminated quotes and absurd sizes.  Before
this module existed each entry point improvised: the library reader
raised raw ``UnicodeDecodeError`` on any non-UTF-8 byte, a UTF-8 BOM
leaked ``\\ufeff`` into cell (0, 0) — poisoning keyword features and
the content-hash cache key — and the CLI silently decoded with
``errors="replace"`` so the library and the CLI disagreed about what a
file contained.

:func:`ingest_bytes` / :func:`ingest_path` / :func:`ingest_text` are
now the single code path every entry point routes through.  The
contract, locked in by the seeded fuzz harness (:mod:`repro.fuzz`):
**any** input yields either an :class:`IngestResult` or an
:class:`~repro.errors.IngestError` — never a raw decoding or indexing
exception — and nothing is repaired silently: every recovery is
counted in the attached :class:`IngestReport`.

The stage does three things, in order:

1. **Encoding resolution** — sniff a BOM (UTF-32 before UTF-16 before
   UTF-8, longest match first), else try strict UTF-8, else walk the
   policy's fallback chain (default ``latin-1``, which accepts any
   byte).  Strict mode raises :class:`~repro.errors.EncodingError`
   when all of that fails; lenient mode decodes with U+FFFD
   substitution and counts the replacements.
2. **Damage policy** — a size guard (strict: raise, lenient: truncate
   at a record boundary), NUL characters (strict: raise, lenient:
   strip and count) and unterminated quotes (strict: raise, lenient:
   keep the tokenizer's fold-into-field recovery and flag it).
3. **Structure** — dialect detection on the *cleaned* text, the
   generalized RFC-4180 parse, and rectangular padding, with the
   padded-cell count recorded.

Strict and lenient mode are byte-identical whenever no recovery fires
(:attr:`IngestReport.recovered` is false); the fuzz harness asserts
this by comparing feature matrices.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import codecs
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.dialect.detector import detect_dialect
from repro.dialect.dialect import Dialect
from repro.errors import (
    DialectError,
    EncodingError,
    MalformedInputError,
    SizeLimitError,
)
from repro.obs import get_metrics, get_tracer
from repro.parsing import parse_csv_outcome
from repro.types import Table

#: Default byte budget: far above any verbose CSV in the paper's
#: corpora, low enough that a pathological input cannot exhaust
#: memory building per-cell feature matrices.
DEFAULT_MAX_BYTES: int = 64 * 1024 * 1024

#: The Unicode replacement character produced by lenient decoding.
REPLACEMENT_CHAR = "�"

#: BOM signature -> codec, longest signatures first so UTF-32 LE
#: (``FF FE 00 00``) wins over its UTF-16 LE prefix (``FF FE``).
_BOM_CODECS: tuple[tuple[bytes, str], ...] = (
    (codecs.BOM_UTF32_LE, "utf-32-le"),
    (codecs.BOM_UTF32_BE, "utf-32-be"),
    (codecs.BOM_UTF8, "utf-8"),
    (codecs.BOM_UTF16_LE, "utf-16-le"),
    (codecs.BOM_UTF16_BE, "utf-16-be"),
)

#: Bytes per code unit for each BOM codec.  Anything above 1 must be
#: truncated *after* decoding: a byte-level cut at the last ``0x0A``
#: can split a code unit in half (UTF-16-LE ``\n`` is ``0A 00``),
#: shifting every following character into U+FFFD noise.
_CODE_UNIT_BYTES: dict[str, int] = {
    "utf-32-le": 4,
    "utf-32-be": 4,
    "utf-8": 1,
    "utf-16-le": 2,
    "utf-16-be": 2,
}


@dataclass(frozen=True)
class IngestPolicy:
    """Knobs of the ingestion stage.

    Parameters
    ----------
    strict:
        When true, any input that would need repair is rejected with
        an :class:`~repro.errors.IngestError` subclass; when false
        (the default), the damage is repaired and reported.
    encoding:
        A caller-preferred encoding tried (strictly) before the UTF-8
        attempt.  A byte-order mark still wins: it is in-band evidence
        of what the producer wrote.
    fallback_encodings:
        Strictly-tried encodings after UTF-8 fails.  The default
        ``latin-1`` accepts every byte string, so lenient decoding
        only reaches U+FFFD substitution when a BOM promised an
        encoding the payload violates.
    max_bytes:
        Size guard over the raw input.

    Every encoding name is validated with :func:`codecs.lookup` at
    construction; an unknown name (``"uft-8"``) raises a typed
    :class:`~repro.errors.EncodingError` immediately instead of being
    silently skipped during the decode attempt chain.
    """

    strict: bool = False
    encoding: str | None = None
    fallback_encodings: tuple[str, ...] = ("latin-1",)
    max_bytes: int = DEFAULT_MAX_BYTES

    def __post_init__(self) -> None:
        names = list(self.fallback_encodings)
        if self.encoding is not None:
            names.insert(0, self.encoding)
        for name in names:
            try:
                codecs.lookup(name)
            except LookupError:
                raise EncodingError(
                    f"unknown encoding {name!r} in ingest policy; "
                    f"fix the spelling (codecs.lookup rejected it)"
                ) from None

    @classmethod
    def strict_policy(cls, **overrides) -> "IngestPolicy":
        """The reject-don't-repair variant of the default policy."""
        return cls(strict=True, **overrides)


#: The default (lenient) policy used by every entry point.
DEFAULT_POLICY = IngestPolicy()


@dataclass
class IngestReport:
    """Everything the ingestion stage did to one input.

    A report travels with the result instead of the stage mutating
    the data silently; ``recovered`` is the single flag downstream
    code keys on ("did strict mode and lenient mode diverge on this
    input?").  Rectangular padding and BOM stripping are *not*
    recovery: both modes perform them identically.
    """

    encoding: str = "utf-8"
    bom: str | None = None
    strict: bool = False
    replacement_count: int = 0
    nul_count: int = 0
    truncated_bytes: int = 0
    unterminated_quote: bool = False
    dangling_escape: bool = False
    dialect_fallback: bool = False
    ragged_rows: int = 0
    ragged_pad_cells: int = 0

    @property
    def recovered(self) -> bool:
        """Whether any lenient repair fired (modes would diverge)."""
        return bool(
            self.replacement_count
            or self.nul_count
            or self.truncated_bytes
            or self.unterminated_quote
            or self.dialect_fallback
        )

    def warnings(self) -> list[str]:
        """Human-readable description of every repair and oddity.

        Ragged rows are deliberately absent: verbose CSV files are
        ragged by construction, so padding counts stay queryable on
        the report without turning every input into a warning.
        """
        notes: list[str] = []
        if self.bom is not None:
            notes.append(f"stripped a {self.bom} byte-order mark")
        if self.encoding != "utf-8":
            notes.append(f"decoded as {self.encoding} (not valid UTF-8)")
        if self.replacement_count:
            notes.append(
                f"substituted {self.replacement_count} undecodable "
                f"sequence(s) with U+FFFD"
            )
        if self.nul_count:
            notes.append(f"removed {self.nul_count} NUL character(s)")
        if self.truncated_bytes:
            notes.append(
                f"truncated {self.truncated_bytes} byte(s) over the "
                f"size guard"
            )
        if self.unterminated_quote:
            notes.append(
                "recovered an unterminated quoted field at end of input"
            )
        if self.dangling_escape:
            notes.append("kept a dangling escape character literal")
        if self.dialect_fallback:
            notes.append(
                "dialect undetectable; fell back to the standard "
                "comma dialect"
            )
        return notes


@dataclass
class IngestResult:
    """A successfully ingested input: table, dialect, clean text,
    and the report of everything done along the way."""

    table: Table
    dialect: Dialect
    text: str
    report: IngestReport = field(default_factory=IngestReport)


# ----------------------------------------------------------------------
# Stage 1 — encoding resolution
# ----------------------------------------------------------------------
def _sniff_bom(data: bytes) -> tuple[bytes, str] | None:
    """The matching ``(signature, codec)`` pair, or ``None``."""
    for signature, codec in _BOM_CODECS:
        if data.startswith(signature):
            return signature, codec
    return None


def decode_bytes(
    data: bytes, policy: IngestPolicy = DEFAULT_POLICY
) -> tuple[str, IngestReport]:
    """Resolve ``data`` to text under ``policy``.

    Returns the decoded text and a report with the encoding-stage
    fields filled in (size guard, BOM, codec, replacements, NULs).
    Raises :class:`~repro.errors.EncodingError`,
    :class:`~repro.errors.SizeLimitError` or
    :class:`~repro.errors.MalformedInputError` in strict mode.
    """
    with get_tracer().span("ingest_decode"):
        report = IngestReport(strict=policy.strict)
        sniffed = _sniff_bom(data)
        if len(data) > policy.max_bytes:
            if policy.strict:
                raise SizeLimitError(
                    f"input is {len(data)} bytes, over the "
                    f"{policy.max_bytes}-byte limit"
                )
            if sniffed is not None and _CODE_UNIT_BYTES[sniffed[1]] > 1:
                text = _decode_truncated_wide(
                    data, sniffed, policy, report
                )
                return _strip_nuls(text, policy, report), report
            data = _apply_size_guard(data, policy, report)

        if sniffed is not None:
            signature, codec = sniffed
            report.bom = codec if codec != "utf-8" else "utf-8-sig"
            report.encoding = codec
            payload = data[len(signature):]
            try:
                text = payload.decode(codec)
            except UnicodeDecodeError as exc:
                if policy.strict:
                    raise EncodingError(
                        f"byte-order mark announced {codec} but the "
                        f"payload does not decode: {exc}"
                    ) from exc
                text = payload.decode(codec, errors="replace")
                # Approximate: genuine U+FFFD in the source also
                # counts.
                report.replacement_count = text.count(REPLACEMENT_CHAR)
        else:
            text = _decode_without_bom(data, policy, report)

        return _strip_nuls(text, policy, report), report


def _apply_size_guard(
    data: bytes, policy: IngestPolicy, report: IngestReport
) -> bytes:
    """Lenient byte-level truncation for single-byte-unit input.

    Safe only when one code unit is one byte (UTF-8 and every
    ASCII-superset fallback): there a ``0x0A`` byte is always a real
    newline, so cutting after it cannot split a character.  Oversize
    BOM'd UTF-16/32 takes :func:`_decode_truncated_wide` instead, and
    strict mode has already rejected in :func:`decode_bytes`.
    """
    if len(data) <= policy.max_bytes:
        return data
    kept = data[: policy.max_bytes]
    # Prefer cutting at a record boundary so the last surviving line
    # is intact; a boundary-free prefix (one giant line) is hard-cut.
    boundary = kept.rfind(b"\n")
    if boundary > 0:
        kept = kept[: boundary + 1]
    report.truncated_bytes = len(data) - len(kept)
    return kept


def _decode_truncated_wide(
    data: bytes,
    sniffed: tuple[bytes, str],
    policy: IngestPolicy,
    report: IngestReport,
) -> str:
    """Decode-then-guard for oversize BOM'd UTF-16/32 input.

    Clips the payload at a code-unit-aligned offset inside the byte
    budget, decodes it, and truncates the *text* at the last newline —
    so the surviving prefix is exactly what a non-truncated decode of
    those records would have produced.  ``truncated_bytes`` is the
    honest count: original payload bytes minus the bytes the kept text
    re-encodes to (BOM excluded, as it never reaches the text).
    """
    signature, codec = sniffed
    report.bom = codec
    report.encoding = codec
    unit = _CODE_UNIT_BYTES[codec]
    budget = max(policy.max_bytes - len(signature), 0)
    clipped = data[len(signature): len(signature) + budget - budget % unit]
    try:
        text = clipped.decode(codec)
    except UnicodeDecodeError as exc:
        # The clip can strand the high half of a UTF-16 surrogate
        # pair at the very end; dropping it is part of truncation.
        # Damage elsewhere is genuine payload damage: substitute and
        # count, exactly as the non-truncated BOM path does.
        if exc.start >= len(clipped) - 2 * unit:
            clipped = clipped[: exc.start]
        text = clipped.decode(codec, errors="replace")
        report.replacement_count = text.count(REPLACEMENT_CHAR)
    boundary = text.rfind("\n")
    if boundary > 0:
        text = text[: boundary + 1]
    report.truncated_bytes = (
        len(data) - len(signature) - len(text.encode(codec))
    )
    return text


def _decode_without_bom(
    data: bytes, policy: IngestPolicy, report: IngestReport
) -> str:
    attempts: list[str] = []
    if policy.encoding is not None:
        attempts.append(policy.encoding)
    attempts.append("utf-8")
    attempts.extend(policy.fallback_encodings)

    tried: list[str] = []
    for encoding in attempts:
        if encoding in tried:
            continue
        tried.append(encoding)
        try:
            text = data.decode(encoding)
        except UnicodeDecodeError:
            # Only decode *failures* advance the chain.  Unknown
            # encoding names cannot reach here: the policy validated
            # every name with codecs.lookup at construction, so a
            # typo'd --encoding raises EncodingError instead of being
            # silently skipped.
            continue
        report.encoding = encoding
        return text

    if policy.strict:
        raise EncodingError(
            f"undecodable input: tried {', '.join(tried)}"
        )
    text = data.decode("utf-8", errors="replace")
    report.encoding = "utf-8"
    report.replacement_count = text.count(REPLACEMENT_CHAR)
    return text


def _strip_nuls(
    text: str, policy: IngestPolicy, report: IngestReport
) -> str:
    count = text.count("\x00")
    if not count:
        return text
    if policy.strict:
        raise MalformedInputError(
            f"input contains {count} NUL character(s)"
        )
    report.nul_count = count
    return text.replace("\x00", "")


# ----------------------------------------------------------------------
# Stages 2+3 — damage policy and structure
# ----------------------------------------------------------------------
def ingest_text(
    text: str,
    dialect: Dialect | None = None,
    policy: IngestPolicy = DEFAULT_POLICY,
    report: IngestReport | None = None,
) -> IngestResult:
    """Ingest already-decoded ``text`` (the library-string entry
    point); ``report`` carries decode-stage facts when the text came
    from :func:`decode_bytes`."""
    if report is None:
        report = IngestReport(strict=policy.strict)
        text = _guard_text(text, policy, report)
        text = _strip_nuls(text, policy, report)
    if text.startswith("\ufeff"):
        # A BOM surviving into a str (e.g. text read upstream with
        # plain utf-8) must never reach dialect detection or features.
        text = text.lstrip("\ufeff")
        report.bom = report.bom or "utf-8-sig"

    if dialect is None:
        with get_tracer().span("dialect_detection"):
            try:
                dialect = detect_dialect(text)
            except DialectError:
                # Strict mode propagates (a typed ReproError);
                # lenient mode falls back to the standard dialect so
                # empty or signal-free text still yields a table —
                # the ``[[""]]`` sentinel for empty input relies on
                # this.
                if policy.strict:
                    raise
                dialect = Dialect.standard()
                report.dialect_fallback = True
    with get_tracer().span("parsing"):
        outcome = parse_csv_outcome(text, dialect)
        if outcome.unterminated_quote and policy.strict:
            raise MalformedInputError(
                "unterminated quoted field at end of input"
            )
        report.unterminated_quote = outcome.unterminated_quote
        report.dangling_escape = outcome.dangling_escape

        rows = outcome.records if outcome.records else [[""]]
        width = max(len(r) for r in rows)
        short = [r for r in rows if len(r) < width]
        report.ragged_rows = len(short)
        report.ragged_pad_cells = sum(width - len(r) for r in short)
    _publish_report(report)
    return IngestResult(
        table=Table(rows), dialect=dialect, text=text, report=report
    )


def _publish_report(report: IngestReport) -> None:
    """Mirror one ingestion's repair events into the metrics registry.

    The per-file truth stays on the :class:`IngestReport`; the metrics
    are the corpus-level aggregate (how many files needed *any*
    repair, and how much of each kind) that a bench or eval run can
    read without collecting every report.
    """
    metrics = get_metrics()
    metrics.increment("ingest.files")
    if report.recovered:
        metrics.increment("ingest.recovered")
    if report.bom is not None:
        metrics.increment("ingest.bom_stripped")
    if report.replacement_count:
        metrics.increment(
            "ingest.replacement_chars", report.replacement_count
        )
    if report.nul_count:
        metrics.increment("ingest.nul_chars", report.nul_count)
    if report.truncated_bytes:
        metrics.increment(
            "ingest.truncated_bytes", report.truncated_bytes
        )
    if report.unterminated_quote:
        metrics.increment("ingest.unterminated_quote")
    if report.dialect_fallback:
        metrics.increment("ingest.dialect_fallback")


def _guard_text(
    text: str, policy: IngestPolicy, report: IngestReport
) -> str:
    """The size guard for the str entry point (counted in characters,
    the closest analogue of the byte budget)."""
    if len(text) <= policy.max_bytes:
        return text
    if policy.strict:
        raise SizeLimitError(
            f"input is {len(text)} characters, over the "
            f"{policy.max_bytes}-character limit"
        )
    kept = text[: policy.max_bytes]
    boundary = kept.rfind("\n")
    if boundary > 0:
        kept = kept[: boundary + 1]
    report.truncated_bytes = len(text) - len(kept)
    return kept


def ingest_bytes(
    data: bytes,
    dialect: Dialect | None = None,
    policy: IngestPolicy = DEFAULT_POLICY,
) -> IngestResult:
    """Ingest raw bytes: decode, repair-or-reject, parse."""
    text, report = decode_bytes(data, policy)
    return ingest_text(text, dialect=dialect, policy=policy, report=report)


def ingest_path(
    path: str | Path,
    dialect: Dialect | None = None,
    policy: IngestPolicy = DEFAULT_POLICY,
) -> IngestResult:
    """Ingest the file at ``path``."""
    return ingest_bytes(
        Path(path).read_bytes(), dialect=dialect, policy=policy
    )


def decode_path(
    path: str | Path, policy: IngestPolicy = DEFAULT_POLICY
) -> tuple[str, IngestReport]:
    """Decode the file at ``path`` without parsing it — the entry
    point for non-CSV text (model manifests, annotation JSON)."""
    return decode_bytes(Path(path).read_bytes(), policy)


def with_encoding(
    policy: IngestPolicy | None, encoding: str | None
) -> IngestPolicy:
    """The policy with a caller-preferred ``encoding`` folded in."""
    base = policy or DEFAULT_POLICY
    if encoding is None:
        return base
    return replace(base, encoding=encoding)
