"""CSV input/output: parsing, writing, cropping and annotations.

The reader implements RFC-4180 parsing generalized to arbitrary
dialects (delimiter, quote character, escape character), since verbose
CSV files in the wild rarely conform to the standard dialect.
"""

from repro.io.annotations import (
    load_annotated_file,
    load_corpus,
    save_annotated_file,
    save_corpus,
)
from repro.io.cropping import crop_annotated_file, crop_table
from repro.io.ingest import (
    IngestPolicy,
    IngestReport,
    IngestResult,
    decode_bytes,
    decode_path,
    ingest_bytes,
    ingest_path,
    ingest_text,
)
from repro.io.parser import parse_csv_text, split_record
from repro.io.reader import read_table, read_table_text
from repro.io.writer import write_csv_text, write_table

__all__ = [
    "IngestPolicy",
    "IngestReport",
    "IngestResult",
    "crop_annotated_file",
    "crop_table",
    "decode_bytes",
    "decode_path",
    "ingest_bytes",
    "ingest_path",
    "ingest_text",
    "load_annotated_file",
    "load_corpus",
    "parse_csv_text",
    "read_table",
    "read_table_text",
    "save_annotated_file",
    "save_corpus",
    "split_record",
    "write_csv_text",
    "write_table",
]
