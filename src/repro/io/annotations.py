"""Ground-truth annotation serialization.

Annotated files round-trip through a simple JSON schema::

    {
      "name": "...",
      "rows": [["raw", "cell", "values"], ...],
      "line_labels": ["metadata", "header", ...],
      "cell_labels": [["metadata", "empty", ...], ...]
    }

which keeps datasets diffable and easy to hand-correct, echoing the
paper's published annotation format.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import AnnotationError
from repro.io.ingest import IngestPolicy, decode_path
from repro.types import AnnotatedFile, CellClass, Corpus, Table


def annotated_file_to_dict(annotated: AnnotatedFile) -> dict:
    """JSON-serializable dictionary form of an annotated file."""
    return {
        "name": annotated.name,
        "rows": [list(r) for r in annotated.table.rows()],
        "line_labels": [label.value for label in annotated.line_labels],
        "cell_labels": [
            [label.value for label in row] for row in annotated.cell_labels
        ],
    }


def annotated_file_from_dict(payload: dict) -> AnnotatedFile:
    """Inverse of :func:`annotated_file_to_dict` with validation."""
    try:
        name = payload["name"]
        rows = payload["rows"]
        line_labels = [CellClass(v) for v in payload["line_labels"]]
        cell_labels = [
            [CellClass(v) for v in row] for row in payload["cell_labels"]
        ]
    except (KeyError, ValueError) as exc:
        raise AnnotationError(f"malformed annotation payload: {exc}") from exc
    return AnnotatedFile(
        name=name,
        table=Table(rows),
        line_labels=line_labels,
        cell_labels=cell_labels,
    )


def save_annotated_file(annotated: AnnotatedFile, path: str | Path) -> None:
    """Write one annotated file as JSON."""
    Path(path).write_text(
        json.dumps(annotated_file_to_dict(annotated), indent=1),
        encoding="utf-8",
    )


def load_annotated_file(path: str | Path) -> AnnotatedFile:
    """Read one annotated file from JSON.

    The read goes through the hardened decoding stage in strict mode:
    a byte-order mark (added by some editors and transports) is
    tolerated, but undecodable bytes raise an
    :class:`~repro.errors.IngestError` instead of corrupting ground
    truth with replacement characters.
    """
    text, _ = decode_path(path, IngestPolicy.strict_policy())
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise AnnotationError(
            f"{path}: malformed annotation JSON: {exc}"
        ) from exc
    return annotated_file_from_dict(payload)


def save_corpus(corpus: Corpus, directory: str | Path) -> None:
    """Write a corpus as one JSON file per annotated file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for annotated in corpus.files:
        save_annotated_file(annotated, directory / f"{annotated.name}.json")


def load_corpus(directory: str | Path, name: str | None = None) -> Corpus:
    """Read every ``*.json`` annotation in ``directory`` as a corpus."""
    directory = Path(directory)
    files = [
        load_annotated_file(p) for p in sorted(directory.glob("*.json"))
    ]
    if not files:
        raise AnnotationError(f"no annotation files found in {directory}")
    return Corpus(name=name or directory.name, files=files)
