"""Plain-text rendering of evaluation results.

The benchmark harness prints, for every paper table, the measured
values next to the published ones so the reproduction can be judged
line by line.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.eval.runner import ClassificationScores
from repro.types import CONTENT_CLASSES, CellClass

_CLASS_NAMES = tuple(c.value for c in CONTENT_CLASSES)


def format_scores_row(
    name: str,
    scores: ClassificationScores,
    labels: Sequence[CellClass] = CONTENT_CLASSES,
) -> str:
    """One algorithm row in the Table 6/7/8 layout."""
    cells = []
    for label in CONTENT_CLASSES:
        if label in scores.per_class_f1 and label in labels:
            cells.append(f"{scores.per_class_f1[label]:.3f}")
        else:
            cells.append("  -  ")
    cells.append(f"{scores.accuracy:.3f}")
    cells.append(f"{scores.macro_f1:.3f}")
    return f"{name:<12} " + " ".join(f"{c:>8}" for c in cells)


def format_paper_row(
    name: str, paper: Mapping[str, float | None]
) -> str:
    """One row of published values in the same layout."""
    cells = []
    for class_name in _CLASS_NAMES:
        value = paper.get(class_name)
        cells.append("  -  " if value is None else f"{value:.3f}")
    accuracy = paper.get("accuracy")
    macro = paper.get("macro_avg")
    cells.append("  -  " if accuracy is None else f"{accuracy:.3f}")
    cells.append("  -  " if macro is None else f"{macro:.3f}")
    return f"{name:<12} " + " ".join(f"{c:>8}" for c in cells)


def scores_header() -> str:
    """Column header matching :func:`format_scores_row`."""
    columns = list(_CLASS_NAMES) + ["accuracy", "macro"]
    return f"{'':<12} " + " ".join(f"{c[:8]:>8}" for c in columns)


def format_comparison_table(
    title: str,
    measured: Mapping[str, ClassificationScores],
    paper: Mapping[str, Mapping[str, float | None]] | None = None,
) -> str:
    """A full measured-vs-paper block for one dataset."""
    lines = [title, scores_header()]
    for name, scores in measured.items():
        lines.append(format_scores_row(f"{name}", scores))
        if paper and name in paper:
            lines.append(format_paper_row(f"  (paper)", paper[name]))
    return "\n".join(lines)


def format_confusion(
    matrix: np.ndarray, labels: Sequence[CellClass] = CONTENT_CLASSES
) -> str:
    """Render a normalized confusion matrix like Figure 3."""
    names = [label.value[:8] for label in labels]
    corner = "actual/pred"
    header = f"{corner:<12} " + " ".join(f"{n:>8}" for n in names)
    lines = [header]
    for i, name in enumerate(names):
        row = " ".join(f"{matrix[i, j]:>8.3f}" for j in range(len(names)))
        lines.append(f"{name:<12} {row}")
    return "\n".join(lines)


def format_importance_table(
    importances: Mapping[str, Mapping[str, float]],
    top_k: int = 5,
) -> str:
    """Per-class top-k feature shares (Figure 4 in text form)."""
    lines = []
    for class_name, shares in importances.items():
        ranked = sorted(shares.items(), key=lambda kv: -kv[1])[:top_k]
        row = ", ".join(f"{name}={share:.0%}" for name, share in ranked)
        lines.append(f"{class_name:<10} {row}")
    return "\n".join(lines)
