"""The numbers reported in the paper, for side-by-side comparison.

All values are transcribed from the published tables; the benchmark
harness prints them next to our measured values so a reader can check
the *shape* of the reproduction (who wins, which classes are hard,
where the crossovers are) at a glance.
"""

from __future__ import annotations

#: Table 3 — percentage of lines per cell-class diversity degree.
TABLE3_DIVERSITY: dict[str, dict[int, float]] = {
    "saus": {1: 86.3, 2: 13.7, 3: 0.0, 4: 0.0, 5: 0.0},
    "cius": {1: 88.7, 2: 11.2, 3: 0.1, 4: 0.0, 5: 0.0},
    "deex": {1: 95.3, 2: 4.6, 3: 0.1, 4: 0.0, 5: 0.0},
}

#: Table 4 — dataset sizes (files, non-empty lines, non-empty cells).
TABLE4_DATASETS: dict[str, tuple[int, int, int]] = {
    "govuk": (226, 97_212, 1_382_704),
    "saus": (223, 11_598, 157_767),
    "cius": (269, 34_556, 367_172),
    "deex": (444, 77_852, 784_229),
    "mendeley": (62, 195_598, 1_359_810),
    "troy": (200, 4_348, 23_077),
}

#: Table 5 — lines/cells per class over SAUS + CIUS + DeEx.
TABLE5_CLASSES: dict[str, tuple[int, int, float]] = {
    "metadata": (2_213, 2_479, 1.12),
    "header": (2_232, 19_047, 8.53),
    "group": (1_767, 6_143, 3.48),
    "data": (114_354, 1_202_058, 10.51),
    "derived": (1_406, 76_996, 54.76),
    "notes": (2_036, 2_445, 1.20),
}

_CLASS_ORDER = ("metadata", "header", "group", "data", "derived", "notes")


def _row(*values: float | None) -> dict[str, float | None]:
    scores = dict(zip(_CLASS_ORDER, values[:6]))
    scores["accuracy"] = values[6]
    scores["macro_avg"] = values[7]
    return scores

#: Table 6 (top) — line classification F1 per dataset and algorithm.
TABLE6_LINE: dict[str, dict[str, dict[str, float | None]]] = {
    "govuk": {
        "CRF-L": _row(.789, .379, .898, .991, .339, .752, .979, .733),
        "Pytheas-L": _row(.446, .444, .172, .986, None, .545, .970, .518),
        "Strudel-L": _row(.670, .774, .919, .989, .361, .797, .978, .751),
    },
    "saus": {
        "CRF-L": _row(.893, .651, .817, .963, .477, .980, .931, .797),
        "Pytheas-L": _row(.884, .768, .741, .973, None, .814, .944, .836),
        "Strudel-L": _row(.984, .960, .882, .987, .599, .984, .976, .899),
    },
    "cius": {
        "CRF-L": _row(.994, .961, .992, .996, .749, .988, .992, .947),
        "Pytheas-L": _row(.988, .867, .000, .970, None, .637, .943, .692),
        "Strudel-L": _row(.994, .972, .984, .996, .834, .978, .993, .960),
    },
    "deex": {
        "CRF-L": _row(.753, .373, .027, .970, .244, .480, .942, .475),
        "Pytheas-L": _row(.564, .406, .137, .980, None, .433, .957, .420),
        "Strudel-L": _row(.797, .807, .357, .989, .548, .761, .976, .710),
    },
}

#: Table 6 (bottom) — cell classification F1 per dataset and algorithm.
TABLE6_CELL: dict[str, dict[str, dict[str, float | None]]] = {
    "saus": {
        "Line-C": _row(.963, .915, .451, .970, .332, .888, .930, .753),
        "RNN-C": _row(.977, .925, .466, .956, .345, .902, .919, .762),
        "Strudel-C": _row(.987, .972, .752, .983, .689, .957, .968, .890),
    },
    "cius": {
        "Line-C": _row(.991, .973, .361, .929, .156, .937, .824, .725),
        "RNN-C": _row(.987, .976, .679, .904, .443, .963, .850, .825),
        "Strudel-C": _row(.993, .993, .916, .946, .465, .989, .895, .884),
    },
    "deex": {
        "Line-C": _row(.630, .625, .155, .981, .258, .520, .955, .528),
        "RNN-C": _row(.623, .772, .347, .952, .244, .413, .930, .559),
        "Strudel-C": _row(.689, .801, .444, .988, .683, .598, .977, .700),
    },
}

#: Table 7 — Troy out-of-domain F1 (train on SAUS+CIUS+DeEx).
TABLE7_TROY: dict[str, dict[str, float]] = {
    "Strudel-L": {
        "metadata": .935, "header": .798, "group": .667, "data": .937,
        "derived": .070, "notes": .971, "macro_avg": .730,
    },
    "Strudel-C": {
        "metadata": .921, "header": .840, "group": .232, "data": .936,
        "derived": .216, "notes": .952, "macro_avg": .683,
    },
}

#: Table 8 — Mendeley plain-text F1 (train on SAUS+CIUS+DeEx).
TABLE8_MENDELEY: dict[str, dict[str, float]] = {
    "Strudel-L": {
        "metadata": .623, "header": .406, "group": .263, "data": .999,
        "derived": .364, "notes": .448, "macro_avg": .517,
    },
    "Strudel-C": {
        "metadata": .245, "header": .629, "group": .303, "data": .999,
        "derived": .051, "notes": .380, "macro_avg": .435,
    },
}

#: Figure 3 (top) — selected line confusion entries the paper discusses.
FIGURE3_LINE_HIGHLIGHTS: dict[str, dict[tuple[str, str], float]] = {
    "govuk": {
        ("derived", "data"): 0.368,
        ("derived", "derived"): 0.514,
        ("derived", "header"): 0.114,
        ("data", "data"): 0.984,
    },
    "cius": {
        ("derived", "data"): 0.203,
        ("derived", "derived"): 0.797,
        ("data", "data"): 0.999,
    },
    "deex": {
        ("derived", "data"): 0.466,
        ("derived", "derived"): 0.498,
        ("header", "data"): 0.030,
        ("data", "data"): 0.986,
    },
}

#: Figure 3 (bottom) — selected cell confusion entries.
FIGURE3_CELL_HIGHLIGHTS: dict[str, dict[tuple[str, str], float]] = {
    "saus": {
        ("group", "data"): 0.290,
        ("group", "group"): 0.654,
        ("derived", "data"): 0.328,  # 1 - .666 - small terms (approx.)
        ("data", "data"): 0.992,
    },
    "cius": {
        ("group", "group"): 0.856,
        ("group", "data"): 0.144,
        ("data", "data"): 0.987,
    },
    "deex": {
        ("group", "data"): 0.449,
        ("group", "group"): 0.400,
        ("header", "data"): 0.224,
        ("data", "data"): 0.992,
    },
}

#: Figure 4 — the most-important-feature claims the paper highlights.
FIGURE4_CLAIMS: tuple[str, ...] = (
    "line class probability is the top feature for notes/metadata/header",
    "row empty-cell ratio is important for notes and metadata",
    "column empty-cell ratio and column position dominate for group",
    "is_aggregation dominates for derived",
    "column derived keywords matter for derived; row keywords do not",
)

#: Section 6.3.4 — scalability: runtime linear in file size;
#: ~256 s for a ~10 MB file on the authors' laptop.
SCALABILITY_NOTE = "runtime grows linearly with file size"
