"""Generic evaluation runners.

The paper's protocol (Section 6.1.2): 10-fold cross-validation with
whole files assigned to folds, repeated ten times with fresh splits,
per-repetition scores averaged.  Confusion matrices (Figure 3) are
built from an *ensemble* prediction per element: the majority vote of
all repetitions, with ties resolved toward the rarer class.

These runners are algorithm-agnostic: any object with ``fit(files)``
and ``predict(table)`` (returning per-line classes for line
algorithms, or a position→class mapping for cell algorithms) can be
evaluated.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.obs import get_metrics, get_tracer
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_per_class,
    macro_f1,
    support_per_class,
)
from repro.ml.model_selection import RepeatedGroupKFold, attach_feature_cache
from repro.perf.cache import FeatureCache
from repro.types import CONTENT_CLASSES, AnnotatedFile, CellClass, Corpus, Table


class LineAlgorithm(Protocol):
    """Anything that labels the lines of a table after fitting."""

    def fit(self, files: list[AnnotatedFile]) -> "LineAlgorithm": ...

    def predict(self, table: Table) -> list[CellClass]: ...


class CellAlgorithm(Protocol):
    """Anything that labels the non-empty cells of a table."""

    def fit(self, files: list[AnnotatedFile]) -> "CellAlgorithm": ...

    def predict(self, table: Table) -> dict[tuple[int, int], CellClass]: ...


@dataclass
class ClassificationScores:
    """Per-class F1, accuracy and macro-average for one evaluation."""

    per_class_f1: dict[CellClass, float]
    accuracy: float
    macro_f1: float
    support: dict[CellClass, int]

    @classmethod
    def from_predictions(
        cls,
        y_true: Sequence[CellClass],
        y_pred: Sequence[CellClass],
        labels: Sequence[CellClass] = CONTENT_CLASSES,
    ) -> "ClassificationScores":
        """Compute all scores from aligned prediction vectors."""
        return cls(
            per_class_f1=f1_per_class(y_true, y_pred, labels=labels),
            accuracy=accuracy_score(y_true, y_pred),
            macro_f1=macro_f1(y_true, y_pred, labels=labels),
            support=support_per_class(y_true, labels),
        )

    @classmethod
    def average(
        cls, scores: list["ClassificationScores"]
    ) -> "ClassificationScores":
        """Mean of several score sets (the paper's repetition average)."""
        if not scores:
            raise EvaluationError("cannot average zero score sets")
        labels = list(scores[0].per_class_f1)
        return cls(
            per_class_f1={
                label: float(
                    np.mean([s.per_class_f1[label] for s in scores])
                )
                for label in labels
            },
            accuracy=float(np.mean([s.accuracy for s in scores])),
            macro_f1=float(np.mean([s.macro_f1 for s in scores])),
            support=scores[0].support,
        )


@dataclass
class CVResult:
    """Outcome of a repeated cross-validation run."""

    scores: ClassificationScores
    confusion: np.ndarray
    labels: tuple[CellClass, ...] = CONTENT_CLASSES
    per_repetition: list[ClassificationScores] = field(default_factory=list)

    @property
    def macro_f1_std(self) -> float:
        """Standard deviation of macro-F1 across repetitions.

        Zero for single-repetition runs; the paper repeats its
        10-fold CV ten times precisely to average this variability
        away.
        """
        if len(self.per_repetition) < 2:
            return 0.0
        return float(
            np.std([s.macro_f1 for s in self.per_repetition], ddof=1)
        )

    @property
    def accuracy_std(self) -> float:
        """Standard deviation of accuracy across repetitions."""
        if len(self.per_repetition) < 2:
            return 0.0
        return float(
            np.std([s.accuracy for s in self.per_repetition], ddof=1)
        )


# ----------------------------------------------------------------------
# Single train/test evaluations
# ----------------------------------------------------------------------
def evaluate_lines(
    model: LineAlgorithm,
    files: list[AnnotatedFile],
    exclude_derived: bool = False,
    keys: list | None = None,
) -> tuple[list[CellClass], list[CellClass]]:
    """Collect ``(y_true, y_pred)`` over the non-empty lines of ``files``.

    ``exclude_derived`` drops derived lines from the evaluation — the
    paper's treatment of Pytheas, which has no derived class.  When
    ``keys`` is a list, an identifying ``(file, line)`` tuple is
    appended for every evaluated element (used by the ensemble
    confusion matrices).
    """
    y_true: list[CellClass] = []
    y_pred: list[CellClass] = []
    for annotated in files:
        predictions = model.predict(annotated.table)
        for i in annotated.non_empty_line_indices():
            truth = annotated.line_labels[i]
            if exclude_derived and truth is CellClass.DERIVED:
                continue
            y_true.append(truth)
            y_pred.append(predictions[i])
            if keys is not None:
                keys.append((annotated.name, i))
    return y_true, y_pred


def evaluate_cells(
    model: CellAlgorithm,
    files: list[AnnotatedFile],
    keys: list | None = None,
) -> tuple[list[CellClass], list[CellClass]]:
    """Collect ``(y_true, y_pred)`` over the non-empty cells of ``files``."""
    y_true: list[CellClass] = []
    y_pred: list[CellClass] = []
    for annotated in files:
        predictions = model.predict(annotated.table)
        for i, j, truth in annotated.non_empty_cell_items():
            y_true.append(truth)
            y_pred.append(predictions.get((i, j), CellClass.DATA))
            if keys is not None:
                keys.append((annotated.name, i, j))
    return y_true, y_pred


# ----------------------------------------------------------------------
# Ensemble voting (Figure 3 protocol)
# ----------------------------------------------------------------------
def _rarity_order(y_true_by_key: dict) -> dict[CellClass, int]:
    """Classes ranked rarest-first, for tie-breaking ensemble votes."""
    counts = Counter(y_true_by_key.values())
    ranked = sorted(CONTENT_CLASSES, key=lambda c: counts.get(c, 0))
    return {label: rank for rank, label in enumerate(ranked)}


def majority_vote(
    votes_by_key: dict, y_true_by_key: dict
) -> tuple[list[CellClass], list[CellClass]]:
    """Ensemble predictions: per-element majority, rare-class ties.

    The paper: "To resolve possible ties, we stipulate that the fewer
    instances of a class included in the dataset, the more prior the
    class is."
    """
    rarity = _rarity_order(y_true_by_key)
    y_true: list[CellClass] = []
    y_pred: list[CellClass] = []
    for key, votes in votes_by_key.items():
        counts = Counter(votes)
        best = max(counts.items(), key=lambda kv: (kv[1], -rarity[kv[0]]))
        y_true.append(y_true_by_key[key])
        y_pred.append(best[0])
    return y_true, y_pred


# ----------------------------------------------------------------------
# Repeated grouped cross-validation
# ----------------------------------------------------------------------
def _cross_validate(
    corpus: Corpus,
    factory: Callable[[], object],
    collect: Callable,
    n_splits: int,
    n_repeats: int,
    seed: int | None,
    labels: tuple[CellClass, ...],
    feature_cache: FeatureCache | None = None,
    **collect_kwargs,
) -> CVResult:
    names = [annotated.name for annotated in corpus.files]
    by_name = {annotated.name: annotated for annotated in corpus.files}
    splitter = RepeatedGroupKFold(
        n_splits=n_splits, n_repeats=n_repeats, random_state=seed
    )

    votes_by_key: dict = {}
    truth_by_key: dict = {}
    per_repetition: list[ClassificationScores] = []
    repetition_true: list[CellClass] = []
    repetition_pred: list[CellClass] = []
    current_repetition = 0

    def flush_repetition() -> None:
        nonlocal repetition_true, repetition_pred
        if repetition_true:
            per_repetition.append(
                ClassificationScores.from_predictions(
                    repetition_true, repetition_pred, labels=labels
                )
            )
        repetition_true, repetition_pred = [], []

    metrics = get_metrics()
    with get_tracer().span(
        "cross_validate", n_splits=n_splits, n_repeats=n_repeats
    ):
        for repetition, train_groups, test_groups in splitter.split(
            names
        ):
            if repetition != current_repetition:
                flush_repetition()
                current_repetition = repetition
            model = factory()
            if feature_cache is not None:
                # Shared across folds and repetitions: the per-file
                # matrices only depend on content + extractor config,
                # so every extraction after the first fold is a
                # lookup.
                attach_feature_cache(model, feature_cache)
            # The fold is timed explicitly (not via span duration)
            # so the timer works under the default NullTracer too.
            fold_started = time.perf_counter()
            with get_tracer().span("cv_fold", repetition=repetition):
                model.fit([by_name[n] for n in sorted(train_groups)])
                keys: list = []
                y_true, y_pred = collect(
                    model,
                    [by_name[n] for n in sorted(test_groups)],
                    keys=keys,
                    **collect_kwargs,
                )
            metrics.increment("cv.folds")
            metrics.observe(
                "cv.fold_seconds", time.perf_counter() - fold_started
            )
            repetition_true.extend(y_true)
            repetition_pred.extend(y_pred)
            for key, truth, prediction in zip(keys, y_true, y_pred):
                votes_by_key.setdefault(key, []).append(prediction)
                truth_by_key[key] = truth
        flush_repetition()

    ensemble_true, ensemble_pred = majority_vote(votes_by_key, truth_by_key)
    confusion = confusion_matrix(
        ensemble_true, ensemble_pred, labels=labels, normalize=True
    )
    return CVResult(
        scores=ClassificationScores.average(per_repetition),
        confusion=confusion,
        labels=labels,
        per_repetition=per_repetition,
    )


def cross_validate_lines(
    corpus: Corpus,
    factory: Callable[[], LineAlgorithm],
    n_splits: int = 10,
    n_repeats: int = 10,
    seed: int | None = 0,
    exclude_derived: bool = False,
    feature_cache: FeatureCache | None = None,
) -> CVResult:
    """Repeated grouped CV of a line algorithm over ``corpus``.

    ``feature_cache`` is offered to every fold's model (see
    :func:`repro.ml.model_selection.attach_feature_cache`); caching
    never changes scores, only how often matrices are extracted.
    """
    labels = tuple(
        c
        for c in CONTENT_CLASSES
        if not (exclude_derived and c is CellClass.DERIVED)
    )
    return _cross_validate(
        corpus, factory, evaluate_lines, n_splits, n_repeats, seed,
        labels, feature_cache=feature_cache,
        exclude_derived=exclude_derived,
    )


def cross_validate_cells(
    corpus: Corpus,
    factory: Callable[[], CellAlgorithm],
    n_splits: int = 10,
    n_repeats: int = 10,
    seed: int | None = 0,
    feature_cache: FeatureCache | None = None,
) -> CVResult:
    """Repeated grouped CV of a cell algorithm over ``corpus``."""
    return _cross_validate(
        corpus, factory, evaluate_cells, n_splits, n_repeats, seed,
        CONTENT_CLASSES, feature_cache=feature_cache,
    )


# ----------------------------------------------------------------------
# Transfer evaluation (Troy / Mendeley protocol)
# ----------------------------------------------------------------------
def transfer_lines(
    train: Corpus, test: Corpus, factory: Callable[[], LineAlgorithm]
) -> ClassificationScores:
    """Train on one corpus, evaluate lines on another."""
    model = factory()
    model.fit(train.files)
    y_true, y_pred = evaluate_lines(model, test.files)
    return ClassificationScores.from_predictions(y_true, y_pred)


def transfer_cells(
    train: Corpus, test: Corpus, factory: Callable[[], CellAlgorithm]
) -> ClassificationScores:
    """Train on one corpus, evaluate cells on another."""
    model = factory()
    model.fit(train.files)
    y_true, y_pred = evaluate_cells(model, test.files)
    return ClassificationScores.from_predictions(y_true, y_pred)
