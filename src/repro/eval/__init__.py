"""Evaluation harness: cross-validation, experiments, reporting.

* :mod:`repro.eval.runner` — generic repeated grouped-CV and transfer
  evaluation for line and cell algorithms.
* :mod:`repro.eval.experiments` — one function per paper table/figure.
* :mod:`repro.eval.paper_values` — the numbers printed in the paper,
  for side-by-side comparison.
* :mod:`repro.eval.reporting` — plain-text rendering of result tables
  and confusion matrices.
"""

from repro.eval.runner import (
    ClassificationScores,
    CVResult,
    cross_validate_cells,
    cross_validate_lines,
    evaluate_cells,
    evaluate_lines,
    transfer_cells,
    transfer_lines,
)

__all__ = [
    "CVResult",
    "ClassificationScores",
    "cross_validate_cells",
    "cross_validate_lines",
    "evaluate_cells",
    "evaluate_lines",
    "transfer_cells",
    "transfer_lines",
]
