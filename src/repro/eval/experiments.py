"""One function per paper table/figure (see DESIGN.md experiment index).

Every experiment accepts an :class:`ExperimentConfig` controlling the
corpus scale and model budgets.  Defaults are benchmark-friendly
(small corpora, 3-fold single-repeat CV, 30-tree forests); the
environment variables ``REPRO_SCALE``, ``REPRO_SPLITS``,
``REPRO_REPEATS``, ``REPRO_TREES`` and ``REPRO_SEED`` raise them
toward the paper's protocol (10x10-fold CV, 100 trees, full-size
corpora) when more time is available.
"""

from __future__ import annotations

import os
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.baselines.crf_line import CRFLineClassifier
from repro.baselines.pytheas import PytheasLineClassifier
from repro.baselines.rnn_cells import RNNCellClassifier
from repro.core.cell_features import CELL_FEATURE_GROUPS, CellFeatureExtractor
from repro.core.derived import DerivedDetector
from repro.core.line_features import (
    LINE_FEATURE_GROUPS,
    LINE_FEATURE_NAMES,
    LineFeatureExtractor,
)
from repro.core.strudel import (
    LineToCellBaseline,
    StrudelCellClassifier,
    StrudelLineClassifier,
    StrudelPipeline,
)
from repro.datagen.corpora import make_corpus
from repro.io.annotations import load_corpus
from repro.io.writer import write_csv_text
from repro.perf.engine import CorpusEngine
from repro.eval.runner import (
    ClassificationScores,
    CVResult,
    cross_validate_cells,
    cross_validate_lines,
    evaluate_lines,
    transfer_cells,
    transfer_lines,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import normalize_importances, permutation_importance
from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import f1_per_class
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.svm import LinearSVM
from repro.obs import get_metrics
from repro.perf.cache import FeatureCache
from repro.types import (
    CLASS_TO_INDEX,
    CONTENT_CLASSES,
    CellClass,
    Corpus,
)

#: Datasets used for in-domain cross-validation experiments.
CV_LINE_DATASETS: tuple[str, ...] = ("govuk", "saus", "cius", "deex")
CV_CELL_DATASETS: tuple[str, ...] = ("saus", "cius", "deex")
#: Datasets merged into the paper's transfer-learning training set.
TRANSFER_TRAIN: tuple[str, ...] = ("saus", "cius", "deex")


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` multiplies each corpus's file count (1.0 = paper-sized).
    """

    scale: float = 0.08
    n_splits: int = 3
    n_repeats: int = 1
    n_estimators: int = 30
    crf_max_iter: int = 40
    rnn_epochs: int = 6
    seed: int = 0
    n_jobs: int = 1
    mendeley_scale: float | None = None
    #: When set, a corpus named ``X`` is loaded from the annotation
    #: JSONs in ``<corpus_dir>/X`` (written by ``save_corpus`` /
    #: ``repro generate``) instead of being regenerated — the route
    #: for evaluating on real, hand-annotated files.  Reads go through
    #: the hardened ingestion decoder, so a BOM or a mislabelled
    #: encoding surfaces as a typed ``ReproError``, not a crash.
    corpus_dir: str | None = None
    _corpora: dict[str, Corpus] = field(default_factory=dict, repr=False)
    _caches: dict[str, FeatureCache] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        """Build a config from ``REPRO_*`` environment variables."""
        return cls(
            scale=float(os.environ.get("REPRO_SCALE", 0.08)),
            n_splits=int(os.environ.get("REPRO_SPLITS", 3)),
            n_repeats=int(os.environ.get("REPRO_REPEATS", 1)),
            n_estimators=int(os.environ.get("REPRO_TREES", 30)),
            crf_max_iter=int(os.environ.get("REPRO_CRF_ITER", 40)),
            rnn_epochs=int(os.environ.get("REPRO_RNN_EPOCHS", 6)),
            seed=int(os.environ.get("REPRO_SEED", 0)),
            n_jobs=int(os.environ.get("REPRO_JOBS", 1)),
            corpus_dir=os.environ.get("REPRO_CORPUS_DIR") or None,
        )

    # ------------------------------------------------------------------
    def corpus(self, name: str) -> Corpus:
        """The (cached) corpus called ``name``: loaded from
        ``corpus_dir`` when configured and present, generated
        otherwise."""
        if name not in self._corpora:
            loaded = self._corpus_from_disk(name)
            if loaded is not None:
                self._corpora[name] = loaded
                return loaded
            scale = self.scale
            if name == "mendeley":
                # Mendeley files are enormous; a lower scale keeps the
                # transfer experiment tractable without changing its
                # data-dominated character.
                scale = self.mendeley_scale or min(self.scale, 0.08)
            self._corpora[name] = make_corpus(name, scale=scale)
        return self._corpora[name]

    def _corpus_from_disk(self, name: str) -> Corpus | None:
        """The on-disk corpus for ``name``, or ``None`` to generate."""
        if self.corpus_dir is None:
            return None
        directory = Path(self.corpus_dir) / name
        if not directory.is_dir():
            return None
        return load_corpus(directory, name=name)

    def merged_transfer_train(self) -> Corpus:
        """SAUS + CIUS + DeEx, the paper's transfer training set."""
        saus = self.corpus("saus")
        return saus.merged_with(
            self.corpus("cius"), self.corpus("deex"), name="saus+cius+deex"
        )

    def feature_cache(self, name: str) -> FeatureCache:
        """The (shared) corpus-level feature cache for corpus ``name``.

        Sized to hold one line and one cell matrix per file so a full
        repeated-CV run over the corpus never evicts.
        """
        if name not in self._caches:
            n_files = max(1, len(self.corpus(name).files))
            self._caches[name] = FeatureCache(max_entries=2 * n_files)
        return self._caches[name]

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Locked counter snapshots of every per-corpus feature cache.

        Each snapshot comes from :meth:`FeatureCache.stats` (never
        from unlocked attribute reads) and is also published as
        ``feature_cache.<corpus>.*`` gauges so a trace written at the
        end of a run carries the final cache state.
        """
        metrics = get_metrics()
        stats: dict[str, dict[str, int]] = {}
        for name in sorted(self._caches):
            snapshot = self._caches[name].stats()
            stats[name] = snapshot
            for field_name, value in snapshot.items():
                metrics.gauge(
                    f"feature_cache.{name}.{field_name}", value
                )
        return stats

    # ------------------------------------------------------------------
    # Algorithm factories
    # ------------------------------------------------------------------
    def strudel_line(self, **kwargs) -> StrudelLineClassifier:
        """A config-sized Strudel-L instance."""
        kwargs.setdefault("n_estimators", self.n_estimators)
        kwargs.setdefault("random_state", self.seed)
        kwargs.setdefault("n_jobs", self.n_jobs)
        return StrudelLineClassifier(**kwargs)

    def strudel_cell(self, **kwargs) -> StrudelCellClassifier:
        """A config-sized Strudel-C instance."""
        kwargs.setdefault("n_estimators", self.n_estimators)
        kwargs.setdefault("random_state", self.seed)
        kwargs.setdefault("n_jobs", self.n_jobs)
        return StrudelCellClassifier(**kwargs)

    def crf_line(self) -> CRFLineClassifier:
        """A config-sized CRF-L instance."""
        return CRFLineClassifier(max_iter=self.crf_max_iter)

    def pytheas_line(self) -> PytheasLineClassifier:
        """A Pytheas-L instance."""
        return PytheasLineClassifier()

    def line_to_cell(self) -> LineToCellBaseline:
        """A config-sized Line-C instance."""
        return LineToCellBaseline(self.strudel_line())

    def rnn_cell(self) -> RNNCellClassifier:
        """A config-sized RNN-C instance."""
        return RNNCellClassifier(
            epochs=self.rnn_epochs, random_state=self.seed
        )

    def strudel_pipeline(self, **kwargs) -> StrudelPipeline:
        """A config-sized end-to-end Strudel pipeline."""
        kwargs.setdefault("n_estimators", self.n_estimators)
        kwargs.setdefault("random_state", self.seed)
        kwargs.setdefault("n_jobs", self.n_jobs)
        return StrudelPipeline(**kwargs)


# ----------------------------------------------------------------------
# Corpus-scale sweeps through the persistent-worker engine
# ----------------------------------------------------------------------
def materialize_corpus(corpus: Corpus, directory: str | Path) -> list[Path]:
    """Write a corpus's tables to ``directory`` as CSV files.

    Returns the file paths in corpus order — the on-disk shape the
    corpus engine (and ``repro classify <dir>``) consumes.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for annotated in corpus.files:
        path = directory / f"{annotated.name}.csv"
        path.write_text(
            write_csv_text(annotated.table.rows()), encoding="utf-8"
        )
        paths.append(path)
    return paths


def corpus_sweep(
    config: ExperimentConfig,
    train: str = "saus",
    target: str | None = None,
    directory: str | Path | None = None,
    cache_dir: str | Path | None = None,
) -> dict:
    """Sweep one corpus through an engine built on another's model.

    Trains a pipeline on ``train`` (feature-cached, config-sized),
    materializes ``target`` (default: the training corpus itself) as
    CSV files, and runs a :class:`~repro.perf.engine.CorpusEngine`
    sweep over them at ``config.n_jobs`` workers.  Returns the sweep
    report plus aggregate line-class counts — the corpus-scale
    companion to the per-file ``analyze`` experiments.
    """
    target = target or train
    pipeline = config.strudel_pipeline(
        feature_cache=config.feature_cache(train)
    )
    pipeline.fit(config.corpus(train).files)
    with tempfile.TemporaryDirectory() as scratch:
        paths = materialize_corpus(
            config.corpus(target), directory or scratch
        )
        with CorpusEngine(
            pipeline,
            n_jobs=config.n_jobs,
            cache_dir=cache_dir,
        ) as engine:
            results, report = engine.sweep_paths(paths)
    line_counts: Counter = Counter()
    cells = 0
    for _path, result in results:
        for klass in result.line_classes():
            line_counts[klass.value] += 1
        cells += len(result.cell_codes)
    return {
        "train": train,
        "target": target,
        "report": report.as_dict(),
        "line_class_counts": dict(sorted(line_counts.items())),
        "classified_cells": cells,
    }


# ----------------------------------------------------------------------
# Table 3 — cell-class diversity degree
# ----------------------------------------------------------------------
def diversity_table(config: ExperimentConfig) -> dict[str, dict[int, float]]:
    """Percentage of non-empty lines per diversity degree (Table 3)."""
    result: dict[str, dict[int, float]] = {}
    for name in CV_CELL_DATASETS:
        corpus = config.corpus(name)
        counts: Counter[int] = Counter()
        total = 0
        for annotated in corpus:
            for i in annotated.non_empty_line_indices():
                counts[annotated.line_diversity_degree(i)] += 1
                total += 1
        result[name] = {
            degree: 100.0 * counts.get(degree, 0) / total
            for degree in range(1, 6)
        }
    return result


# ----------------------------------------------------------------------
# Table 4 — dataset summary
# ----------------------------------------------------------------------
def dataset_summary(
    config: ExperimentConfig,
) -> dict[str, tuple[int, int, int]]:
    """(files, non-empty lines, non-empty cells) per corpus (Table 4)."""
    return {
        name: (
            len(config.corpus(name)),
            config.corpus(name).total_lines(),
            config.corpus(name).total_cells(),
        )
        for name in CV_LINE_DATASETS + ("mendeley", "troy")
    }


# ----------------------------------------------------------------------
# Table 5 — class distribution
# ----------------------------------------------------------------------
def class_distribution(
    config: ExperimentConfig,
) -> dict[str, tuple[int, int, float]]:
    """Lines, cells and cells-per-line per class over the merged
    SAUS + CIUS + DeEx corpus (Table 5)."""
    line_counts: Counter[CellClass] = Counter()
    cell_counts: Counter[CellClass] = Counter()
    for name in TRANSFER_TRAIN:
        for annotated in config.corpus(name):
            for i in annotated.non_empty_line_indices():
                line_counts[annotated.line_labels[i]] += 1
            for _, _, label in annotated.non_empty_cell_items():
                cell_counts[label] += 1
    return {
        klass.value: (
            line_counts.get(klass, 0),
            cell_counts.get(klass, 0),
            (
                cell_counts.get(klass, 0) / line_counts[klass]
                if line_counts.get(klass)
                else 0.0
            ),
        )
        for klass in CONTENT_CLASSES
    }


# ----------------------------------------------------------------------
# Table 6 — comparative evaluation
# ----------------------------------------------------------------------
def line_comparison(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = CV_LINE_DATASETS,
    algorithms: tuple[str, ...] = ("CRF-L", "Pytheas-L", "Strudel-L"),
) -> dict[str, dict[str, CVResult]]:
    """Table 6 (top): line classification CV per dataset/algorithm."""
    factories = {
        "CRF-L": config.crf_line,
        "Pytheas-L": config.pytheas_line,
        "Strudel-L": config.strudel_line,
    }
    results: dict[str, dict[str, CVResult]] = {}
    for dataset in datasets:
        corpus = config.corpus(dataset)
        results[dataset] = {}
        for name in algorithms:
            results[dataset][name] = cross_validate_lines(
                corpus,
                factories[name],
                n_splits=config.n_splits,
                n_repeats=config.n_repeats,
                seed=config.seed,
                exclude_derived=(name == "Pytheas-L"),
                feature_cache=config.feature_cache(dataset),
            )
    return results


def cell_comparison(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = CV_CELL_DATASETS,
    algorithms: tuple[str, ...] = ("Line-C", "RNN-C", "Strudel-C"),
) -> dict[str, dict[str, CVResult]]:
    """Table 6 (bottom): cell classification CV per dataset/algorithm."""
    factories = {
        "Line-C": config.line_to_cell,
        "RNN-C": config.rnn_cell,
        "Strudel-C": config.strudel_cell,
    }
    results: dict[str, dict[str, CVResult]] = {}
    for dataset in datasets:
        corpus = config.corpus(dataset)
        results[dataset] = {}
        for name in algorithms:
            results[dataset][name] = cross_validate_cells(
                corpus,
                factories[name],
                n_splits=config.n_splits,
                n_repeats=config.n_repeats,
                seed=config.seed,
                feature_cache=config.feature_cache(dataset),
            )
    return results


# ----------------------------------------------------------------------
# Tables 7 and 8 — transfer evaluations
# ----------------------------------------------------------------------
def out_of_domain(
    config: ExperimentConfig,
) -> dict[str, ClassificationScores]:
    """Table 7: train on SAUS+CIUS+DeEx, test on Troy."""
    train = config.merged_transfer_train()
    troy = config.corpus("troy")
    return {
        "Strudel-L": transfer_lines(train, troy, config.strudel_line),
        "Strudel-C": transfer_cells(train, troy, config.strudel_cell),
    }


def plain_text(config: ExperimentConfig) -> dict[str, ClassificationScores]:
    """Table 8: train on SAUS+CIUS+DeEx, test on Mendeley."""
    train = config.merged_transfer_train()
    mendeley = config.corpus("mendeley")
    return {
        "Strudel-L": transfer_lines(train, mendeley, config.strudel_line),
        "Strudel-C": transfer_cells(train, mendeley, config.strudel_cell),
    }


# ----------------------------------------------------------------------
# Figure 3 — confusion matrices
# ----------------------------------------------------------------------
def line_confusion(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = ("govuk", "cius", "deex"),
) -> dict[str, np.ndarray]:
    """Figure 3 (top): ensemble confusion matrices for Strudel-L."""
    results = line_comparison(config, datasets, algorithms=("Strudel-L",))
    return {
        dataset: results[dataset]["Strudel-L"].confusion
        for dataset in datasets
    }


def cell_confusion(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = CV_CELL_DATASETS,
) -> dict[str, np.ndarray]:
    """Figure 3 (bottom): ensemble confusion matrices for Strudel-C."""
    results = cell_comparison(config, datasets, algorithms=("Strudel-C",))
    return {
        dataset: results[dataset]["Strudel-C"].confusion
        for dataset in datasets
    }


# ----------------------------------------------------------------------
# Figure 4 — permutation feature importance
# ----------------------------------------------------------------------
def _one_vs_rest_importance(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: tuple[str, ...],
    config: ExperimentConfig,
    n_repeats: int = 5,
) -> dict[str, dict[str, float]]:
    result: dict[str, dict[str, float]] = {}
    for klass in CONTENT_CLASSES:
        binary = (y == CLASS_TO_INDEX[klass]).astype(np.int64)
        if binary.sum() == 0 or binary.sum() == len(binary):
            continue
        model = RandomForestClassifier(
            n_estimators=config.n_estimators, random_state=config.seed
        ).fit(X, binary)

        def binary_f1(y_true, y_pred) -> float:
            return f1_per_class(list(y_true), list(y_pred), labels=[1])[1]

        importances = permutation_importance(
            model, X, binary,
            n_repeats=n_repeats,
            scorer=binary_f1,
            random_state=config.seed,
        )
        shares = normalize_importances(importances)
        result[klass.value] = dict(zip(feature_names, shares.tolist()))
    return result


def _aggregate_neighbor_features(
    shares: dict[str, dict[str, float]]
) -> dict[str, dict[str, float]]:
    """Collapse the 8+8 neighbour features into two groups (Figure 4)."""
    out: dict[str, dict[str, float]] = {}
    for class_name, feature_shares in shares.items():
        collapsed: dict[str, float] = {}
        for feature, share in feature_shares.items():
            if feature.startswith("neighbor_value_length"):
                key = "neighbor_value_length"
            elif feature.startswith("neighbor_data_type"):
                key = "neighbor_data_type"
            else:
                key = feature
            collapsed[key] = collapsed.get(key, 0.0) + share
        out[class_name] = collapsed
    return out


def line_feature_importance(
    config: ExperimentConfig,
) -> dict[str, dict[str, float]]:
    """Figure 4 (top): per-class line feature importance shares."""
    extractor = LineFeatureExtractor()
    train = config.merged_transfer_train()
    matrices, labels = [], []
    for annotated in train:
        features = extractor.extract(annotated.table)
        for i in annotated.non_empty_line_indices():
            matrices.append(features[i])
            labels.append(CLASS_TO_INDEX[annotated.line_labels[i]])
    X = np.vstack(matrices)
    y = np.asarray(labels)
    return _one_vs_rest_importance(X, y, LINE_FEATURE_NAMES, config)


def cell_feature_importance(
    config: ExperimentConfig,
) -> dict[str, dict[str, float]]:
    """Figure 4 (bottom): per-class cell feature importance shares."""
    train = config.merged_transfer_train()
    line_model = config.strudel_line()
    line_model.fit(train.files)
    extractor = CellFeatureExtractor()
    matrices, labels = [], []
    for annotated in train:
        probabilities = line_model.predict_proba(annotated.table)
        positions, features = extractor.extract(
            annotated.table, probabilities
        )
        for (i, j), row in zip(positions, features):
            matrices.append(row)
            labels.append(CLASS_TO_INDEX[annotated.cell_labels[i][j]])
    X = np.vstack(matrices)
    y = np.asarray(labels)
    shares = _one_vs_rest_importance(
        X, y, extractor.feature_names, config
    )
    return _aggregate_neighbor_features(shares)


# ----------------------------------------------------------------------
# Supplementary ablations (Section 6.1.2 / Section 4 / Algorithm 2)
# ----------------------------------------------------------------------
def classifier_ablation(
    config: ExperimentConfig, dataset: str = "saus"
) -> dict[str, CVResult]:
    """RF vs Naive Bayes vs kNN vs SVM as the Strudel-L backbone."""
    backbones = {
        "random_forest": lambda: RandomForestClassifier(
            n_estimators=config.n_estimators, random_state=config.seed
        ),
        "naive_bayes": GaussianNaiveBayes,
        "knn": lambda: KNeighborsClassifier(n_neighbors=5),
        "svm": lambda: LinearSVM(random_state=config.seed),
    }
    corpus = config.corpus(dataset)
    results: dict[str, CVResult] = {}
    for name, backbone in backbones.items():
        results[name] = cross_validate_lines(
            corpus,
            lambda backbone=backbone: StrudelLineClassifier(
                classifier_factory=backbone
            ),
            n_splits=config.n_splits,
            n_repeats=config.n_repeats,
            seed=config.seed,
        )
    return results


def global_feature_ablation(
    config: ExperimentConfig, dataset: str = "deex"
) -> dict[str, CVResult]:
    """Strudel-L with and without the rejected global features."""
    corpus = config.corpus(dataset)
    return {
        "local_only": cross_validate_lines(
            corpus, config.strudel_line,
            n_splits=config.n_splits, n_repeats=config.n_repeats,
            seed=config.seed,
        ),
        "with_global": cross_validate_lines(
            corpus,
            lambda: config.strudel_line(
                extractor=LineFeatureExtractor(include_global_features=True)
            ),
            n_splits=config.n_splits, n_repeats=config.n_repeats,
            seed=config.seed,
        ),
    }


def derived_parameter_sweep(
    config: ExperimentConfig,
    dataset: str = "saus",
    deltas: tuple[float, ...] = (0.01, 0.1, 1.0),
    coverages: tuple[float, ...] = (0.3, 0.5, 0.7),
) -> dict[tuple[float, float], float]:
    """Derived-line F1 across (delta, coverage) settings.

    Reproduces the Section 6.1.2 claim of insensitivity to the
    aggregation delta and coverage parameters.
    """
    corpus = config.corpus(dataset)
    files = corpus.files
    cut = max(1, int(0.8 * len(files)))
    train, test = files[:cut], files[cut:]
    results: dict[tuple[float, float], float] = {}
    for delta in deltas:
        for coverage in coverages:
            detector = DerivedDetector(delta=delta, coverage=coverage)
            model = config.strudel_line(
                extractor=LineFeatureExtractor(detector=detector)
            )
            model.fit(train)
            y_true, y_pred = evaluate_lines(model, test)
            scores = f1_per_class(y_true, y_pred, labels=CONTENT_CLASSES)
            results[(delta, coverage)] = scores[CellClass.DERIVED]
    return results


def anchor_mode_ablation(
    config: ExperimentConfig, dataset: str = "troy"
) -> dict[str, float]:
    """Keyword anchoring vs exhaustive search in Algorithm 2.

    The paper's Troy failure analysis blames keyword anchoring for the
    missed derived lines; the exhaustive variant quantifies what the
    anchor heuristic trades away.
    """
    train = config.merged_transfer_train()
    test = config.corpus(dataset)
    results: dict[str, float] = {}
    for mode in ("keyword", "exhaustive"):
        detector = DerivedDetector(anchor_mode=mode)
        model = config.strudel_line(
            extractor=LineFeatureExtractor(detector=detector)
        )
        model.fit(train.files)
        y_true, y_pred = evaluate_lines(model, test.files)
        scores = f1_per_class(y_true, y_pred, labels=CONTENT_CLASSES)
        results[mode] = scores[CellClass.DERIVED]
    return results


def feature_group_ablation(
    config: ExperimentConfig, dataset: str = "saus"
) -> dict[str, CVResult]:
    """Strudel-L with one feature group removed at a time."""
    corpus = config.corpus(dataset)
    results: dict[str, CVResult] = {
        "all": cross_validate_lines(
            corpus, config.strudel_line,
            n_splits=config.n_splits, n_repeats=config.n_repeats,
            seed=config.seed,
        )
    }
    for group, members in LINE_FEATURE_GROUPS.items():
        kept = tuple(
            name for name in LINE_FEATURE_NAMES if name not in members
        )
        results[f"without_{group}"] = cross_validate_lines(
            corpus,
            lambda kept=kept: config.strudel_line(feature_subset=kept),
            n_splits=config.n_splits, n_repeats=config.n_repeats,
            seed=config.seed,
        )
    return results


def cell_feature_group_ablation(
    config: ExperimentConfig, dataset: str = "saus"
) -> dict[str, CVResult]:
    """Strudel-C with one feature group removed at a time."""
    corpus = config.corpus(dataset)
    all_names = tuple(
        name
        for group in CELL_FEATURE_GROUPS.values()
        for name in group
    )
    results: dict[str, CVResult] = {
        "all": cross_validate_cells(
            corpus, config.strudel_cell,
            n_splits=config.n_splits, n_repeats=config.n_repeats,
            seed=config.seed,
        )
    }
    for group, members in CELL_FEATURE_GROUPS.items():
        kept = tuple(name for name in all_names if name not in members)
        results[f"without_{group}"] = cross_validate_cells(
            corpus,
            lambda kept=kept: config.strudel_cell(feature_subset=kept),
            n_splits=config.n_splits, n_repeats=config.n_repeats,
            seed=config.seed,
        )
    return results
