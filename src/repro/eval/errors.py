"""Difficult-case analysis (Section 6.3.6).

The paper closes its evaluation by cataloguing the typical
misclassification patterns: *derived as data*, *header as data*,
*notes as data*, *group as data* and *metadata as data*, each with a
root-cause narrative.  This module computes that catalogue
programmatically: given ground truth and predictions, it counts every
confusion pair, flags the pairs above the paper's 10% threshold and
attaches the matching root-cause description, so a practitioner gets
the Section 6.3.6 table for *their* data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.types import CellClass

#: The paper's root-cause narratives for its headline error patterns.
ROOT_CAUSES: dict[tuple[CellClass, CellClass], str] = {
    (CellClass.DERIVED, CellClass.DATA): (
        "derived lines without aggregation keywords are invisible to "
        "the anchor-based detection, and aggregates over "
        "non-consecutive lines defeat the prefix-sum scan"
    ),
    (CellClass.HEADER, CellClass.DATA): (
        "numeric headers (years, dates) adjacent to data look like "
        "data; headers of lower tables in a vertical stack have "
        "unusual line positions"
    ),
    (CellClass.NOTES, CellClass.DATA): (
        "notes organized as small tables, or placed to the right of "
        "a table, carry tabular features"
    ),
    (CellClass.GROUP, CellClass.DATA): (
        "multi-level group columns to the left of data columns are "
        "rare enough to be read as data; group cells share lines with "
        "undetected derived cells"
    ),
    (CellClass.METADATA, CellClass.DATA): (
        "elaborate metadata organized as small tables exhibits "
        "tabular features"
    ),
    (CellClass.DERIVED, CellClass.HEADER): (
        "derived lines between header and data areas, separated by "
        "empty lines, adopt header-like positions"
    ),
}


@dataclass
class ErrorPattern:
    """One actual→predicted confusion with its share and root cause."""

    actual: CellClass
    predicted: CellClass
    count: int
    share_of_actual: float
    root_cause: str | None

    def describe(self) -> str:
        """One-line rendering, e.g. ``derived as data: 12 (34%)``."""
        base = (
            f"{self.actual.value} as {self.predicted.value}: "
            f"{self.count} ({self.share_of_actual:.0%})"
        )
        if self.root_cause:
            return f"{base} — {self.root_cause}"
        return base


def analyze_errors(
    y_true: Sequence[CellClass],
    y_pred: Sequence[CellClass],
    threshold: float = 0.10,
) -> list[ErrorPattern]:
    """The Section 6.3.6 catalogue for a prediction run.

    Returns every actual→predicted pair whose count exceeds
    ``threshold`` of the actual class's instances (the paper reports
    pairs with "> 10% incorrect classification in the class"), sorted
    by share descending.  Known patterns carry the paper's root-cause
    narrative.
    """
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred differ in length")
    support: Counter[CellClass] = Counter(y_true)
    confusions: Counter[tuple[CellClass, CellClass]] = Counter(
        (t, p) for t, p in zip(y_true, y_pred) if t is not p
    )
    patterns: list[ErrorPattern] = []
    for (actual, predicted), count in confusions.items():
        share = count / support[actual]
        if share <= threshold:
            continue
        patterns.append(
            ErrorPattern(
                actual=actual,
                predicted=predicted,
                count=count,
                share_of_actual=share,
                root_cause=ROOT_CAUSES.get((actual, predicted)),
            )
        )
    patterns.sort(key=lambda p: -p.share_of_actual)
    return patterns


def format_error_report(patterns: list[ErrorPattern]) -> str:
    """Plain-text rendering of the difficult-case catalogue."""
    if not patterns:
        return "no confusion pattern exceeds the reporting threshold"
    return "\n".join(f"- {pattern.describe()}" for pattern in patterns)


def data_sink_share(
    y_true: Sequence[CellClass], y_pred: Sequence[CellClass]
) -> float:
    """Fraction of all minority-class errors absorbed by ``data``.

    The paper observes that "when a line of a minority (non-data)
    class is misclassified, the wrong prediction tends to be 'data'";
    this statistic quantifies that tendency in one number.
    """
    minority_errors = 0
    to_data = 0
    for t, p in zip(y_true, y_pred):
        if t is CellClass.DATA or t is p:
            continue
        minority_errors += 1
        if p is CellClass.DATA:
            to_data += 1
    return to_data / minority_errors if minority_errors else 0.0
