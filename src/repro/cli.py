"""Command-line interface: ``python -m repro <command>``.

Three commands cover the zero-to-working workflow:

``detect``
    Print the detected dialect of a CSV file.
``classify``
    Train a Strudel pipeline on a generated corpus personality and
    print every line of the input file with its predicted class
    (``--cells`` adds the per-cell view).  Pointed at a *directory*
    or a container (zip/tar archive, NDJSON stream, XML document), it
    enumerates every table source through the adapters in
    :mod:`repro.io.adapters` — recursively, case-insensitively, with
    per-source provenance like ``lake/arch.zip!a.csv`` — and sweeps
    them through the persistent-worker corpus engine instead
    (``--jobs`` for parallel workers, ``--sweep-cache`` for the
    content-addressed result cache).
``generate``
    Materialize a corpus personality on disk as CSV files plus JSON
    ground-truth annotations, for experimentation outside Python.
``lint``
    Run the repro static-analysis rules (R001–R006) over source
    trees; exits 1 when there are findings, for use as a CI gate.
``bench``
    Time the pipeline stages and analyze paths (legacy two-pass,
    single-pass, cached) and write ``BENCH_pipeline.json``; see
    ``docs/performance.md``.
``fuzz``
    Run the seeded byte-level ingestion fuzz harness and fail if any
    input escapes the ``Table``-or-``ReproError`` contract;
    ``--adapters`` fuzzes mutated zip/tar/NDJSON/XML containers
    through the source-adapter layer instead.  See
    ``docs/robustness.md``.
``serve``
    Train a pipeline, then run the long-lived classification service
    (``repro-serve/1`` newline-delimited JSON over TCP) until
    SIGINT/SIGTERM, draining gracefully; failures land in the
    ``--dlq`` dead-letter queue.  See ``docs/serving.md``.
``dlq``
    Operate on a dead-letter queue: ``list`` its records, ``replay``
    them back through a fresh engine (recovered records are removed),
    or ``purge`` it.

The ``detect``, ``classify`` and ``bench`` commands accept
``--trace FILE`` (and ``--trace-format json|text``) to write a span
trace plus a metrics snapshot of the run; the ``REPRO_TRACE`` /
``REPRO_TRACE_FORMAT`` environment variables do the same without
touching the command line.  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Iterator

import repro
from repro.analysis import lint_paths, render_json, render_text
from repro.errors import ConfigurationError, IngestError, ServeError
from repro.core.strudel import StrudelPipeline
from repro.datagen.corpora import CORPUS_BUILDERS, make_corpus
from repro.fuzz import FuzzConfig, format_fuzz_report, run_fuzz
from repro.io.adapters import (
    SOURCE_SUFFIXES,
    SourcePayload,
    adapter_for,
    is_container_name,
)
from repro.io.annotations import save_annotated_file
from repro.io.ingest import IngestPolicy, IngestResult, ingest_path
from repro.io.writer import write_csv_text
from repro.perf.engine import CorpusEngine, FileResult, SweepReport
from repro.serve import (
    ClassificationService,
    DeadLetterQueue,
    replay_dead_letters,
    run_service,
)
from repro.obs import (
    TRACE_FORMATS,
    Tracer,
    activate,
    get_metrics,
    write_trace,
)
from repro.perf.bench import (
    DEFAULT_OUTPUT,
    DEFAULT_TOLERANCE,
    BenchConfig,
    configs_comparable,
    diff_reports,
    format_diff,
    format_summary,
    load_report,
    run_benchmark,
    write_report,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Strudel — structure detection in verbose CSV files",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    detect = commands.add_parser(
        "detect", help="detect the dialect of a CSV file"
    )
    detect.add_argument("file", type=Path)
    _add_ingest_flags(detect)
    _add_trace_flags(detect)

    classify = commands.add_parser(
        "classify",
        help="classify the lines (and cells) of a CSV file, or sweep "
             "a whole directory of them through the corpus engine",
    )
    classify.add_argument("file", type=Path)
    classify.add_argument(
        "--corpus", default="saus", choices=sorted(CORPUS_BUILDERS),
        help="training corpus personality (default: saus)",
    )
    classify.add_argument("--scale", type=float, default=0.15,
                          help="training corpus scale (default: 0.15)")
    classify.add_argument("--trees", type=int, default=40,
                          help="random forest size (default: 40)")
    classify.add_argument("--seed", type=int, default=0)
    classify.add_argument(
        "--jobs", type=int, default=1,
        help="worker count for feature extraction and forest "
             "training; never changes predictions (default: 1)",
    )
    classify.add_argument(
        "--cells", action="store_true",
        help="also print cell classes for mixed lines",
    )
    classify.add_argument(
        "--sweep-cache", type=Path, default=None, metavar="DIR",
        help="directory-sweep result cache (content-addressed; "
             "re-sweeping unchanged files is near-free)",
    )
    classify.add_argument(
        "--fail-on-skip", action="store_true",
        help="exit 1 if any file in a directory sweep was skipped "
             "(default: report skips but exit 0)",
    )
    _add_ingest_flags(classify)
    _add_trace_flags(classify)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived classification service "
             "(repro-serve/1 over TCP) until SIGINT/SIGTERM",
    )
    _add_training_flags(serve)
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=7333,
        help="listen port; 0 picks an ephemeral port, printed on "
             "startup (default: 7333)",
    )
    serve.add_argument(
        "--sweep-cache", type=Path, default=None, metavar="DIR",
        help="content-addressed result cache shared with classify "
             "sweeps",
    )
    serve.add_argument(
        "--dlq", type=Path, default=None, metavar="DIR",
        help="dead-letter queue directory; every failed request is "
             "recorded there for `repro dlq replay`",
    )
    serve.add_argument(
        "--queue-size", type=int, default=256,
        help="submission queue bound — the backpressure knob "
             "(default: 256)",
    )
    serve.add_argument(
        "--batch-files", type=int, default=32,
        help="max requests coalesced into one engine batch "
             "(default: 32)",
    )
    _add_ingest_flags(serve)
    _add_trace_flags(serve)

    dlq = commands.add_parser(
        "dlq", help="list, replay or purge a dead-letter queue"
    )
    dlq.add_argument(
        "action", choices=("list", "replay", "purge"),
        help="list records, replay them through a fresh engine, or "
             "delete them all",
    )
    dlq.add_argument(
        "--dlq", type=Path, required=True, metavar="DIR",
        help="dead-letter queue directory",
    )
    _add_training_flags(dlq)
    _add_ingest_flags(dlq)
    _add_trace_flags(dlq)

    generate = commands.add_parser(
        "generate", help="write a generated corpus to a directory"
    )
    generate.add_argument("corpus", choices=sorted(CORPUS_BUILDERS))
    generate.add_argument("output", type=Path)
    generate.add_argument("--scale", type=float, default=0.1)
    generate.add_argument("--seed", type=int, default=0)

    lint = commands.add_parser(
        "lint", help="run the repro static-analysis rules"
    )
    lint.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories (default: the installed repro "
             "package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select", action="append",
        help="rule ids to run; comma-separated and/or repeated "
             "(--select R002,R101 --select R005; default: all)",
    )
    lint.add_argument(
        "--no-graph", action="store_true",
        help="skip the whole-program rules (R101-R105); per-module "
             "rules only",
    )

    bench = commands.add_parser(
        "bench", help="benchmark the pipeline and emit a JSON report"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI-sized workload (small corpus, forest and file)",
    )
    bench.add_argument(
        "--output", type=Path, default=Path(DEFAULT_OUTPUT),
        help=f"report path (default: {DEFAULT_OUTPUT})",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--jobs", type=int, default=1,
        help="worker count; never changes results (default: 1)",
    )
    bench.add_argument(
        "--baseline", type=Path, default=None,
        help="saved report to diff against; exits non-zero if any "
        "timing regresses beyond the tolerance",
    )
    bench.add_argument(
        "--baseline-tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed slowdown ratio over the baseline before the "
        f"diff fails (default: {DEFAULT_TOLERANCE:g} = "
        f"{DEFAULT_TOLERANCE:.0%})",
    )
    _add_trace_flags(bench)

    fuzz = commands.add_parser(
        "fuzz",
        help="run the seeded byte-level ingestion fuzz harness",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--iterations", type=int, default=500,
        help="number of mutated inputs to ingest (default: 500)",
    )
    fuzz.add_argument(
        "--corpus", default="saus", choices=sorted(CORPUS_BUILDERS),
        help="corpus personality seeding the base inputs "
             "(default: saus)",
    )
    fuzz.add_argument(
        "--scale", type=float, default=0.02,
        help="base corpus scale (default: 0.02)",
    )
    fuzz.add_argument(
        "--max-printed-failures", type=int, default=10,
        help="cap on failure details printed (default: 10)",
    )
    fuzz.add_argument(
        "--adapters", action="store_true",
        help="fuzz the source-adapter layer instead: build seeded "
             "zip/tar/NDJSON/XML containers, byte-mutate them, and "
             "require typed errors from enumeration + ingest",
    )
    return parser


def _add_training_flags(subparser: argparse.ArgumentParser) -> None:
    """The pipeline-training knobs shared by serve and dlq replay
    (mirrors classify's flags and defaults)."""
    subparser.add_argument(
        "--corpus", default="saus", choices=sorted(CORPUS_BUILDERS),
        help="training corpus personality (default: saus)",
    )
    subparser.add_argument("--scale", type=float, default=0.15,
                           help="training corpus scale (default: 0.15)")
    subparser.add_argument("--trees", type=int, default=40,
                           help="random forest size (default: 40)")
    subparser.add_argument("--seed", type=int, default=0)
    subparser.add_argument(
        "--jobs", type=int, default=1,
        help="worker count for training and classification; never "
             "changes predictions (default: 1)",
    )


def _add_trace_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help="write a span trace + metrics snapshot of this run to "
             "FILE (also enabled by the REPRO_TRACE environment "
             "variable)",
    )
    subparser.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default=None,
        help="trace file format (default: json; env: "
             "REPRO_TRACE_FORMAT)",
    )


def _resolve_trace(
    args: argparse.Namespace,
) -> tuple[Path | None, str]:
    """The trace destination and format for this invocation.

    Command-line flags win; the ``REPRO_TRACE`` and
    ``REPRO_TRACE_FORMAT`` environment variables fill in whatever the
    flags left unset (and cover commands without trace flags).
    """
    path = getattr(args, "trace", None)
    if path is None:
        env_path = os.environ.get("REPRO_TRACE")
        path = Path(env_path) if env_path else None
    fmt = getattr(args, "trace_format", None)
    if fmt is None:
        fmt = os.environ.get("REPRO_TRACE_FORMAT") or "json"
    return path, fmt


def _add_ingest_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--strict", action="store_true",
        help="reject damaged input (bad encoding, NULs, unterminated "
             "quotes, oversize) instead of repairing it",
    )
    subparser.add_argument(
        "--encoding", default=None,
        help="preferred encoding, tried before UTF-8 (a BOM still "
             "wins); default: auto-detect",
    )


def _build_policy(args: argparse.Namespace) -> IngestPolicy:
    """The ingest policy from the CLI flags.  Construction validates
    encoding names, so a typo'd ``--encoding uft-8`` raises a typed
    :class:`~repro.errors.EncodingError` here (exit 2 at every call
    site) instead of being silently skipped during decoding."""
    return IngestPolicy(
        strict=args.strict, encoding=args.encoding or None
    )


def _ingest_input(args: argparse.Namespace) -> IngestResult:
    """Route a CLI file argument through the hardened ingestion stage,
    surfacing every repair as a warning line on stderr."""
    policy = _build_policy(args)
    result = ingest_path(args.file, policy=policy)
    for note in result.report.warnings():
        print(f"repro: {args.file}: {note}", file=sys.stderr)
    return result


def _cmd_detect(args: argparse.Namespace, out) -> int:
    try:
        ingested = _ingest_input(args)
    except IngestError as error:
        print(f"repro: {args.file}: {error}", file=sys.stderr)
        return 2
    print(ingested.dialect.describe(), file=out)
    return 0


def _train_pipeline(args: argparse.Namespace, out) -> StrudelPipeline:
    """Fit the classify command's pipeline on a generated corpus."""
    print(
        f"training on corpus={args.corpus} scale={args.scale:g} "
        f"trees={args.trees} ...",
        file=out,
    )
    corpus = make_corpus(args.corpus, seed=args.seed, scale=args.scale)
    pipeline = StrudelPipeline(
        n_estimators=args.trees, random_state=args.seed,
        n_jobs=args.jobs,
    )
    return pipeline.fit(corpus.files)


#: Payloads per ``process_payloads`` call in a lake sweep: enough to
#: amortize worker dispatch, small enough to bound memory while an
#: adapter streams archive members.
_SWEEP_CHUNK_SOURCES = 64


def _chunked(
    payloads: "Iterator[SourcePayload]", size: int
) -> "Iterator[list[SourcePayload]]":
    chunk: list[SourcePayload] = []
    for payload in payloads:
        chunk.append(payload)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _cmd_sweep(args: argparse.Namespace, out) -> int:
    """Lake mode of ``classify``: the source adapters enumerate every
    ingestable source under the path — a recursive, case-insensitive
    crawl that opens zip/tar archives, NDJSON logs and XML dumps —
    and the persistent-worker corpus engine classifies the payloads.
    The summary reports enumerated vs classified, so nothing
    disappears silently."""
    try:
        policy = _build_policy(args)
        adapter = adapter_for(args.file, policy)
        candidates = adapter.candidates()
    except IngestError as error:
        print(f"repro: {args.file}: {error}", file=sys.stderr)
        return 2
    if not candidates:
        print(
            f"repro: {args.file}: no ingestable sources "
            f"(recognised suffixes: {', '.join(SOURCE_SUFFIXES)})",
            file=sys.stderr,
        )
        return 2
    pipeline = _train_pipeline(args, out)
    prefix = f"{args.file}{os.sep}"
    enumerated = 0
    totals = SweepReport()
    with CorpusEngine(
        pipeline,
        n_jobs=args.jobs,
        policy=policy,
        cache_dir=args.sweep_cache,
    ) as engine:
        for chunk in _chunked(adapter.iterate(), _SWEEP_CHUNK_SOURCES):
            enumerated += len(chunk)
            results, report = engine.process_payloads(
                [(p.provenance, p.data) for p in chunk]
            )
            totals.merge(report)
            for payload, result in zip(chunk, results):
                if not isinstance(result, FileResult):
                    continue
                counts: dict[str, int] = {}
                for klass in result.line_classes():
                    counts[klass.value] = counts.get(klass.value, 0) + 1
                summary = " ".join(
                    f"{name}={counts[name]}" for name in sorted(counts)
                )
                display = payload.provenance
                if display.startswith(prefix):
                    display = display[len(prefix):]
                print(
                    f"{display}: {result.n_rows}x{result.n_cols} "
                    f"[{result.dialect.describe()}] {summary}",
                    file=out,
                )
    adapter_skips = list(getattr(adapter, "skipped", ()))
    skips = len(totals.skipped) + len(adapter_skips)
    print(
        f"swept {totals.completed}/{enumerated} sources "
        f"({totals.cache_hits} cached, {skips} skipped, "
        f"{totals.batches} batches)",
        file=out,
    )
    for entry in totals.skipped:
        print(
            f"repro: skipped {entry.path} [{entry.stage}]: "
            f"{entry.reason}",
            file=sys.stderr,
        )
    for provenance, reason in adapter_skips:
        print(
            f"repro: skipped {provenance} [enumerate]: {reason}",
            file=sys.stderr,
        )
    if args.fail_on_skip and skips:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    try:
        policy = _build_policy(args)
    except IngestError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    pipeline = _train_pipeline(args, out)
    dlq = DeadLetterQueue(args.dlq) if args.dlq is not None else None
    try:
        service = ClassificationService(
            pipeline,
            n_jobs=args.jobs,
            policy=policy,
            sweep_cache=args.sweep_cache,
            dlq=dlq,
            queue_size=args.queue_size,
            batch_files=args.batch_files,
        )
    except ServeError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    summary = run_service(
        service, host=args.host, port=args.port, out=out
    )
    print(
        f"served {summary['results']}/{summary['requests']} requests "
        f"({summary['dead_letters']} dead-lettered)",
        file=out,
    )
    return 0


def _cmd_dlq(args: argparse.Namespace, out) -> int:
    queue = DeadLetterQueue(args.dlq)
    if args.action == "list":
        records = queue.records()
        for record in records:
            sha = record.payload_sha256 or "-"
            print(
                f"{record.request_id}\t{record.stage}\t"
                f"{record.source}\t{sha[:12]}\treplays="
                f"{record.replays}\t{record.reason}",
                file=out,
            )
        print(f"{len(records)} dead letter(s) in {args.dlq}", file=out)
        return 0
    if args.action == "purge":
        count = queue.purge()
        print(f"purged {count} dead letter(s) from {args.dlq}", file=out)
        return 0
    if not len(queue):
        print(f"nothing to replay in {args.dlq}", file=out)
        return 0
    try:
        policy = _build_policy(args)
    except IngestError as error:
        print(f"repro dlq: {error}", file=sys.stderr)
        return 2
    pipeline = _train_pipeline(args, out)
    with CorpusEngine(
        pipeline, n_jobs=args.jobs, policy=policy
    ) as engine:
        report = replay_dead_letters(queue, engine)
    print(report.summary(), file=out)
    return 0 if not report.still_dead else 1


def _cmd_classify(args: argparse.Namespace, out) -> int:
    if args.file.is_dir() or is_container_name(args.file.name):
        # Directories and container files (zip/tar/ndjson/xml) sweep
        # through the adapter layer; loose files classify inline.
        return _cmd_sweep(args, out)
    try:
        ingested = _ingest_input(args)
    except IngestError as error:
        print(f"repro: {args.file}: {error}", file=sys.stderr)
        return 2
    pipeline = _train_pipeline(args, out)
    result = pipeline.analyze(ingested.text, dialect=ingested.dialect)

    print(f"dialect: {result.dialect.describe()}", file=out)
    for i in range(result.table.n_rows):
        label = result.line_classes[i].value
        preview = ",".join(result.table.row(i))
        if len(preview) > 60:
            preview = preview[:57] + "..."
        print(f"{label:<9} {preview}", file=out)

    if args.cells:
        print("\nmixed lines (cell-level view):", file=out)
        for i in range(result.table.n_rows):
            line_cells = {
                j: klass
                for (row, j), klass in result.cell_classes.items()
                if row == i
            }
            classes = set(line_cells.values())
            if len(classes) <= 1:
                continue
            rendered = ", ".join(
                f"col{j}={klass.value}"
                for j, klass in sorted(line_cells.items())
            )
            print(f"  line {i}: {rendered}", file=out)
    return 0


def _cmd_generate(args: argparse.Namespace, out) -> int:
    corpus = make_corpus(args.corpus, seed=args.seed, scale=args.scale)
    csv_dir = args.output / "csv"
    truth_dir = args.output / "annotations"
    csv_dir.mkdir(parents=True, exist_ok=True)
    truth_dir.mkdir(parents=True, exist_ok=True)
    for annotated in corpus.files:
        (csv_dir / f"{annotated.name}.csv").write_text(
            write_csv_text(annotated.table.rows()), encoding="utf-8"
        )
        save_annotated_file(
            annotated, truth_dir / f"{annotated.name}.json"
        )
    print(
        f"wrote {len(corpus)} files ({corpus.total_lines()} lines, "
        f"{corpus.total_cells()} cells) to {args.output}",
        file=out,
    )
    return 0


def _cmd_lint(args: argparse.Namespace, out) -> int:
    paths = args.paths or [Path(repro.__file__).parent]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}", file=sys.stderr)
        return 2
    select = (
        [s for chunk in args.select for s in chunk.split(",") if s.strip()]
        if args.select
        else None
    )
    try:
        findings = lint_paths(paths, select=select, graph=not args.no_graph)
    except ConfigurationError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings), file=out)
    else:
        print(render_text(findings), file=out)
    return 1 if findings else 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    config = (
        BenchConfig.quick_config(seed=args.seed, n_jobs=args.jobs)
        if args.quick
        else BenchConfig(seed=args.seed, n_jobs=args.jobs)
    )
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_report(args.baseline)
        # json.JSONDecodeError subclasses ValueError.
        except (OSError, ValueError) as error:
            print(f"cannot load baseline: {error}", file=out)
            return 2
    print(
        f"benchmarking (quick={config.quick}, trees={config.trees}, "
        f"rows={config.rows}, jobs={config.n_jobs}) ...",
        file=out,
    )
    report = run_benchmark(config)
    print(format_summary(report), file=out)
    exit_code = 0 if report["cv"]["byte_identical"] else 1
    if baseline is not None:
        if not configs_comparable(report, baseline):
            print(
                f"baseline {args.baseline} ran a different workload "
                "configuration; refusing to diff (rerun with matching "
                "--quick/--seed flags)",
                file=out,
            )
            return 2
        diff = diff_reports(report, baseline, args.baseline_tolerance)
        report["baseline_comparison"] = {
            "baseline_path": str(args.baseline), **diff
        }
        print(format_diff(diff), file=out)
        if diff["regressions"]:
            exit_code = max(exit_code, 1)
    path = write_report(report, args.output)
    print(f"report written to {path}", file=out)
    return exit_code


def _cmd_fuzz(args: argparse.Namespace, out) -> int:
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        corpus=args.corpus,
        scale=args.scale,
        adapters=args.adapters,
    )
    target = "source adapters" if config.adapters else "ingestion"
    print(
        f"fuzzing {target} (seed={config.seed}, "
        f"iterations={config.iterations}, corpus={config.corpus}) ...",
        file=out,
    )
    report = run_fuzz(config)
    print(
        format_fuzz_report(
            report, max_failures=args.max_printed_failures
        ),
        file=out,
    )
    return 0 if report.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {
        "detect": _cmd_detect,
        "classify": _cmd_classify,
        "generate": _cmd_generate,
        "lint": _cmd_lint,
        "bench": _cmd_bench,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
        "dlq": _cmd_dlq,
    }
    trace_path, trace_format = _resolve_trace(args)
    if trace_path is None:
        return handlers[args.command](args, out)
    if trace_format not in TRACE_FORMATS:
        print(
            f"repro: unknown trace format {trace_format!r} "
            f"(expected one of {', '.join(TRACE_FORMATS)})",
            file=sys.stderr,
        )
        return 2
    tracer = Tracer()
    with activate(tracer):
        with tracer.span(args.command):
            exit_code = handlers[args.command](args, out)
    write_trace(
        trace_path, tracer, metrics=get_metrics(), fmt=trace_format
    )
    print(f"trace written to {trace_path}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
